package analog

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Variation is one process/voltage variation corner for the LTA analog
// blocks (Fig. 13): Gaussian transistor parameter spread (length and
// threshold voltage) with the given 3σ fraction, plus a static supply
// droop fraction below the nominal 1.8 V LTA rail.
type Variation struct {
	// Process3Sigma is the 3σ spread of transistor parameters as a fraction
	// of nominal (paper sweep: 0 … 0.35).
	Process3Sigma float64
	// SupplyDrop is the LTA supply reduction as a fraction of nominal
	// (paper: 0, 0.05 → 1.71 V, 0.10 → 1.68 V).
	SupplyDrop float64
}

// validate panics on out-of-range corners.
func (v Variation) validate() {
	if v.Process3Sigma < 0 || v.Process3Sigma > 0.5 {
		panic(fmt.Sprintf("analog: process 3σ %v out of [0,0.5]", v.Process3Sigma))
	}
	if v.SupplyDrop < 0 || v.SupplyDrop > 0.2 {
		panic(fmt.Sprintf("analog: supply droop %v out of [0,0.2]", v.SupplyDrop))
	}
}

// Variation sensitivity constants, calibrated against Fig. 13's qualitative
// anchors: at the worst corner (35% process 3σ, 10% supply droop) the LTA's
// minimum detectable distance must grow enough to pull classification below
// the moderate band, while the nominal-supply corner stays near the maximum
// accuracy (94.3% vs 89.2% in the paper).
const (
	// offsetMaxDist is the 3σ comparator offset, in Hamming-distance
	// units at D = 10,000, at the full 35% process corner under nominal
	// supply. Calibrated against the classifier's margin structure so the
	// 35%-corner accuracies land in the paper's 94.3%/92.1%/89.2% band
	// (Fig. 13; see EXPERIMENTS.md for the margin-vs-Δ calibration curve).
	offsetMaxDist = 270.0
	// supplySens is the exponential sensitivity of the offset to supply
	// droop: offsets grow ×exp(supplySens·droop) as headroom shrinks
	// ("in the lower voltages, the process variation has more destructive
	// impact", §IV-F).
	supplySens = 1.9
)

// offsetSigma returns the per-comparator offset σ in distance units for the
// given corner and dimensionality.
func (l LTA) offsetSigma(dim int, v Variation) float64 {
	v.validate()
	if v.Process3Sigma == 0 {
		return 0
	}
	scale := float64(dim) / 10000.0
	threeSigma := offsetMaxDist * (v.Process3Sigma / 0.35) * math.Exp(supplySens*v.SupplyDrop) * scale
	return threeSigma / 3
}

// offsetDistance returns the deterministic 3σ offset allowance added to the
// minimum detectable distance at this corner.
func (l LTA) offsetDistance(dim int, v Variation) float64 {
	return 3 * l.offsetSigma(dim, v)
}

// OffsetSigma exposes the per-comparator offset σ (in Hamming-distance
// units) for structural simulators that instantiate individual LTA
// comparators with static offsets drawn from the corner's distribution.
func (l LTA) OffsetSigma(dim int, v Variation) float64 {
	return l.offsetSigma(dim, v)
}

// MonteCarlo runs a seeded Monte-Carlo over LTA comparator instances — the
// paper uses 5,000 HSPICE samples (§IV-B) — and returns the empirical
// distribution of minimum detectable distances. Each sample draws a
// comparator offset from the corner's Gaussian and adds it to the
// quantization floor.
func (l LTA) MonteCarlo(dim int, v Variation, runs int, seed uint64) MCResult {
	l.validate()
	if runs < 1 {
		panic(fmt.Sprintf("analog: %d Monte-Carlo runs", runs))
	}
	rng := rand.New(rand.NewPCG(seed, 0x600d_cafe))
	sigma := l.offsetSigma(dim, v)
	base := l.MinDetectableFloat(dim)
	samples := make([]float64, runs)
	for i := range samples {
		samples[i] = base + math.Abs(rng.NormFloat64())*sigma
	}
	sort.Float64s(samples)
	return MCResult{samples: samples}
}

// MCResult holds a sorted Monte-Carlo sample of detectable distances.
type MCResult struct {
	samples []float64
}

// Runs returns the sample count.
func (r MCResult) Runs() int { return len(r.samples) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the minimum detectable
// distance, rounded up to a whole bit and floored at 1.
func (r MCResult) Quantile(q float64) int {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("analog: quantile %v", q))
	}
	idx := int(q * float64(len(r.samples)-1))
	md := int(math.Ceil(r.samples[idx]))
	if md < 1 {
		md = 1
	}
	return md
}

// Mean returns the mean detectable distance of the sample.
func (r MCResult) Mean() float64 {
	var s float64
	for _, x := range r.samples {
		s += x
	}
	return s / float64(len(r.samples))
}
