package analog

import (
	"fmt"
	"math"
)

// Stabilizer models A-HAM's match-line stabilizer (§III-D1, the MB1/MB2
// branch of Fig. 6(b)): instead of letting mismatches discharge the ML —
// where the sagging voltage makes the current saturate after a handful of
// mismatches — the stabilizer pins the ML at the supply and routes the
// mismatch current through a sense branch. The row current then stays
// proportional to the mismatch count up to the stabilizer's compliance
// limit, which is what lets A-HAM read distances in the hundreds instead
// of single digits.
type Stabilizer struct {
	// CellCurrentA is the current of one mismatching cell at the pinned ML
	// voltage (A): V_ML / R_ON.
	CellCurrentA float64
	// ComplianceA is the maximum current the stabilizer branch can source
	// (A); beyond it the ML voltage sags and linearity degrades smoothly.
	ComplianceA float64
}

// DefaultStabilizer sizes the branch for the paper's device corner
// (R_ON ≈ 500 kΩ at 1 V → 2 µA per mismatch) with compliance for roughly
// a thousand simultaneous mismatches.
func DefaultStabilizer() Stabilizer {
	return Stabilizer{CellCurrentA: 2e-6, ComplianceA: 2e-3}
}

// validate panics on a meaningless configuration.
func (s Stabilizer) validate() {
	if s.CellCurrentA <= 0 || s.ComplianceA <= s.CellCurrentA {
		panic(fmt.Sprintf("analog: invalid stabilizer cell=%g compliance=%g",
			s.CellCurrentA, s.ComplianceA))
	}
}

// Current returns the sensed row current (A) for m mismatching cells:
// linear in m while far below compliance, with a smooth soft limit
// I = I_max·(1 − exp(−m·i_cell/I_max)) as the branch runs out of headroom.
func (s Stabilizer) Current(m int) float64 {
	s.validate()
	if m < 0 {
		panic(fmt.Sprintf("analog: %d mismatches", m))
	}
	ideal := float64(m) * s.CellCurrentA
	return s.ComplianceA * (1 - math.Exp(-ideal/s.ComplianceA))
}

// LinearRange returns the largest mismatch count for which the sensed
// current stays within tol (fractional) of the ideal linear response.
func (s Stabilizer) LinearRange(tol float64) int {
	s.validate()
	if tol <= 0 || tol >= 1 {
		panic(fmt.Sprintf("analog: tolerance %v", tol))
	}
	m := 0
	for {
		next := m + 1
		ideal := float64(next) * s.CellCurrentA
		if (ideal-s.Current(next))/ideal > tol {
			return m
		}
		m = next
		if m > 1<<20 {
			return m // compliance effectively unbounded at this tolerance
		}
	}
}

// UnstabilizedLinearRange computes the same figure for a conventional
// discharging match line (the TCAM regime of §III-D1): its current
// response is the saturating conductance of MatchLine, so linearity is
// lost after a few mismatches — the paper notes "having D > 7 cells has
// minor impact on the total ML discharging current".
func UnstabilizedLinearRange(ml MatchLine, tol float64) int {
	if tol <= 0 || tol >= 1 {
		panic(fmt.Sprintf("analog: tolerance %v", tol))
	}
	ideal1 := ml.Conductance(1)
	for m := 1; m < ml.Cells; m++ {
		ideal := float64(m+1) * ideal1
		if (ideal-ml.Conductance(m+1))/ideal > tol {
			return m
		}
	}
	return ml.Cells
}
