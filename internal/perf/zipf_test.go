package perf

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestZipfDeterministic: a fixed seed yields an identical sequence — the
// property the load generator's reproducibility rests on.
func TestZipfDeterministic(t *testing.T) {
	mk := func() *Zipf { return NewZipf(1000, 0.99, rand.New(rand.NewPCG(2017, 42))) }
	a, b := mk(), mk()
	for i := 0; i < 10_000; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatalf("draw %d: %d != %d under the same seed", i, va, vb)
		}
		if va >= 1000 {
			t.Fatalf("draw %d: rank %d out of range", i, va)
		}
	}
	// A different seed stream must not replay the same sequence.
	c := NewZipf(1000, 0.99, rand.New(rand.NewPCG(2017, 43)))
	same := 0
	a2 := mk()
	for i := 0; i < 1000; i++ {
		if a2.Next() == c.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestZipfHeadFrequencies draws a large fixed-seed sample and checks the
// hottest ranks' empirical frequencies against the exact PMF: the head is
// what an associative-memory cache or batch coalescer actually sees, so
// the approximation must be tight there.
func TestZipfHeadFrequencies(t *testing.T) {
	const (
		n     = 100
		theta = 0.99
		draws = 200_000
	)
	z := NewZipf(n, theta, rand.New(rand.NewPCG(2017, 7)))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Ranks 0 and 1 are handled by exact thresholds in Next(), so their
	// frequencies sit within sampling noise of the PMF; ranks beyond come
	// from the continuous inverse-CDF approximation, which Gray et al.
	// accept ~15-20% relative bias on for small ranks — bound it at 25%.
	for k := uint64(0); k < 5; k++ {
		want := z.PMF(k)
		got := float64(counts[k]) / draws
		tol := 0.05
		if k >= 2 {
			tol = 0.25
		}
		if rel := math.Abs(got-want) / want; rel > tol {
			t.Errorf("rank %d: frequency %.4f, PMF %.4f (rel err %.1f%%, tol %.0f%%)",
				k, got, want, 100*rel, 100*tol)
		}
	}
	// The skew shape itself: rank 0 beats rank 9 by roughly 10^theta.
	if counts[0] < 5*counts[9] {
		t.Errorf("head not skewed: rank0 %d, rank9 %d", counts[0], counts[9])
	}
	// Mass is normalized: every draw landed in range and the top ranks
	// dominate (with theta=.99, n=100 the top 10 carry >50%).
	top10 := 0
	for k := 0; k < 10; k++ {
		top10 += counts[k]
	}
	if float64(top10)/draws < 0.5 {
		t.Errorf("top-10 mass %.3f, want > 0.5", float64(top10)/draws)
	}
	// PMF sums to 1 over the support.
	var sum float64
	for k := uint64(0); k < n; k++ {
		sum += z.PMF(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %.12f", sum)
	}
}

// TestZipfConstructionPanics pins the misuse guards.
func TestZipfConstructionPanics(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     uint64
		theta float64
	}{
		{"zero-n", 0, 0.99},
		{"theta-zero", 10, 0},
		{"theta-one", 10, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			NewZipf(tc.n, tc.theta, rand.New(rand.NewPCG(1, 2)))
		}()
	}
}
