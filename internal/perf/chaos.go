package perf

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"hdam/internal/assoc"
	"hdam/internal/fault"
	"hdam/internal/serve"
)

// ChaosConfig tunes the chaos soak: a closed-loop load against the serve
// engine while seeded engine-level faults (worker panics, latency spikes, a
// slow shard) strike the search path. The fault schedule is a pure function
// of Seed (see internal/fault's chaos determinism contract).
type ChaosConfig struct {
	Requests   int           // total requests across all clients
	Clients    int           // concurrent closed-loop clients
	Workers    int           // engine workers
	MaxBatch   int           // micro-batch cap
	PanicRate  float64       // per-search injected panic probability
	SpikeRate  float64       // per-search latency-spike probability
	Spike      time.Duration // latency-spike length
	StallEvery int           // every StallEvery-th search stalls (0 = off)
	Stall      time.Duration // slow-shard stall length
	Hedge      bool          // hedged dispatch on
	Policy     serve.Policy  // admission policy under the soak
	Seed       uint64        // fault-schedule seed
	P99Bound   time.Duration // acceptance bound on p99 latency
}

// DefaultChaosConfig is the soak protocol of EXPERIMENTS §18: enough
// injected failure to force many supervised restarts and hedges, at a load
// that saturates the batcher.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Requests:   2048,
		Clients:    16,
		Workers:    4,
		MaxBatch:   16,
		PanicRate:  0.02,
		SpikeRate:  0.05,
		Spike:      2 * time.Millisecond,
		StallEvery: 64,
		Stall:      5 * time.Millisecond,
		Hedge:      true,
		Policy:     serve.Block,
		Seed:       benchSeed,
		P99Bound:   250 * time.Millisecond,
	}
}

// ChaosResult is one chaos-soak measurement with its acceptance evidence.
type ChaosResult struct {
	Name       string  `json:"name"`
	Requests   int     `json:"requests"`   // requests submitted
	Answered   int     `json:"answered"`   // requests that got a Response or typed error
	Classified int     `json:"classified"` // requests answered with a classification
	Faulted    int     `json:"faulted"`    // requests failed by an injected panic (ErrWorkerPanic)
	Mismatches int     `json:"mismatches"` // classified answers differing from the serial reference
	Panics     uint64  `json:"panics"`     // engine panic counter
	Restarts   uint64  `json:"restarts"`   // supervised worker restarts
	Hedged     uint64  `json:"hedged"`     // straggling batches re-issued
	HedgeWins  uint64  `json:"hedge_wins"` // requests answered by a hedge copy
	Shed       uint64  `json:"shed"`       // requests shed by admission control
	QPS        float64 `json:"qps"`
	P50Us      float64 `json:"p50_us"`
	P99Us      float64 `json:"p99_us"`
	Leaked     int     `json:"leaked_goroutines"` // goroutines alive above the pre-engine baseline
}

// Violations checks the soak's acceptance criteria and returns a line per
// violated one (empty means the soak passed): every request answered, no
// silent result corruption on non-faulted requests, supervised restarts
// actually exercised, bounded p99, zero goroutine leaks.
func (r ChaosResult) Violations(cfg ChaosConfig) []string {
	var v []string
	if r.Answered != r.Requests {
		v = append(v, fmt.Sprintf("answered %d of %d requests", r.Answered, r.Requests))
	}
	if r.Mismatches != 0 {
		v = append(v, fmt.Sprintf("%d non-faulted answers differ from the serial loop", r.Mismatches))
	}
	if cfg.PanicRate > 0 && r.Panics == 0 {
		v = append(v, "panic injection configured but no panic struck (soak too small?)")
	}
	if r.Panics > 0 && r.Restarts == 0 {
		v = append(v, fmt.Sprintf("%d panics but no supervised restart", r.Panics))
	}
	if cfg.P99Bound > 0 && r.P99Us > float64(cfg.P99Bound)/1e3 {
		v = append(v, fmt.Sprintf("p99 %.1fµs above bound %s", r.P99Us, cfg.P99Bound))
	}
	if r.Leaked > 0 {
		v = append(v, fmt.Sprintf("%d goroutines leaked", r.Leaked))
	}
	return v
}

// RunChaos drives the serve engine under injected failure: Clients
// closed-loop clients submit Requests texts while the chaos injectors
// panic and stall searches on the seeded schedule. Every request must come
// back as either a classification or a typed error; classifications are
// checked bit-for-bit against a serial fault-free reference; the engine
// must restart panicked workers and leak nothing.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	f := buildFixtures()
	texts := benchTexts(f, 256)

	// Serial fault-free reference: the answer every non-faulted request
	// must reproduce exactly.
	enc := benchEncoderFactory()()
	exact := assoc.NewExact(f.mem)
	refIdx := make([]int, len(texts))
	for i, text := range texts {
		q, n := enc.EncodeText(text, benchSeed)
		if n == 0 {
			return ChaosResult{}, fmt.Errorf("perf: empty chaos text %d", i)
		}
		refIdx[i] = exact.Search(q).Index
	}

	injs := []fault.ChaosInjector{
		&fault.WorkerPanic{Rate: cfg.PanicRate, Seed: cfg.Seed},
		&fault.LatencySpike{Rate: cfg.SpikeRate, Spike: cfg.Spike, Seed: cfg.Seed},
	}
	if cfg.StallEvery > 0 && cfg.Stall > 0 {
		injs = append(injs, &fault.ShardStall{Shards: cfg.StallEvery, Slow: 0, Delay: cfg.Stall})
	}
	chaotic := fault.Chaos(assoc.NewExact(f.mem), injs...)

	baseline := runtime.NumGoroutine()
	eng, err := serve.New(f.mem, chaotic, benchEncoderFactory(), serve.Config{
		Workers:  cfg.Workers,
		MaxBatch: cfg.MaxBatch,
		Policy:   cfg.Policy,
		Hedge:    cfg.Hedge,
		Seed:     benchSeed,
	})
	if err != nil {
		return ChaosResult{}, err
	}

	type outcome struct {
		text int
		resp serve.Response
		err  error
		lat  time.Duration
	}
	per := cfg.Requests / cfg.Clients
	if per < 1 {
		per = 1
	}
	outs := make([][]outcome, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make([]outcome, 0, per)
			for i := 0; i < per; i++ {
				ti := (c*per + i) % len(texts)
				t0 := time.Now()
				resp, err := eng.Submit(context.Background(), texts[ti])
				mine = append(mine, outcome{text: ti, resp: resp, err: err, lat: time.Since(t0)})
			}
			outs[c] = mine
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	eng.Close()

	// Give exiting goroutines a moment to retire before the leak census.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	res := ChaosResult{
		Name:     fmt.Sprintf("chaos/w%d-c%d-p%g", cfg.Workers, cfg.Clients, cfg.PanicRate),
		Requests: cfg.Clients * per,
	}
	var lats []time.Duration
	for _, mine := range outs {
		for _, o := range mine {
			lats = append(lats, o.lat)
			switch {
			case o.err == nil:
				res.Answered++
				res.Classified++
				if o.resp.Result.Index != refIdx[o.text] {
					res.Mismatches++
				}
			case errors.Is(o.err, serve.ErrWorkerPanic):
				res.Answered++
				res.Faulted++
			case errors.Is(o.err, serve.ErrOverloaded),
				errors.Is(o.err, serve.ErrDrained),
				errors.Is(o.err, serve.ErrNoNGrams),
				errors.Is(o.err, context.DeadlineExceeded),
				errors.Is(o.err, context.Canceled):
				res.Answered++ // a typed answer, just not a classification
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st := eng.Stats()
	res.Panics = st.Panics
	res.Restarts = st.Restarts
	res.Hedged = st.Hedged
	res.HedgeWins = st.HedgeWins
	res.Shed = st.Shed
	res.QPS = float64(len(lats)) / elapsed.Seconds()
	res.P50Us = float64(percentile(lats, 50)) / 1e3
	res.P99Us = float64(percentile(lats, 99)) / 1e3
	if g := runtime.NumGoroutine(); g > baseline {
		res.Leaked = g - baseline
	}
	return res, nil
}
