package perf

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"hdam/internal/assoc"
	"hdam/internal/fault"
	"hdam/internal/fleet"
	"hdam/internal/serve"
)

// FleetPoint configures one measurement of the scatter-gather replica
// fleet: a replica/partition shape, a closed-loop client load and an
// optional replica-fault schedule.
type FleetPoint struct {
	Name       string
	Replicas   int
	Partitions int
	Scheme     fleet.Scheme
	Clients    int
	Requests   int
	Deadline   time.Duration // per-dispatch deadline (0 = 5ms)
	Chaos      []fault.ReplicaInjector
}

// DefaultFleetPoints is the sweep hambench -fleet records: the healthy
// fleet first (every answer must stay bit-identical to the single-engine
// scan), then the same fleet with one replica stalled past the dispatch
// deadline and another crashed outright — the degraded-answer-rate point.
func DefaultFleetPoints(requests int) []FleetPoint {
	return []FleetPoint{
		{
			Name:     "fleet/healthy-r4",
			Replicas: 4, Clients: 8, Requests: requests,
		},
		{
			Name:     "fleet/stall+crash-r4",
			Replicas: 4, Clients: 8, Requests: requests,
			Chaos: []fault.ReplicaInjector{
				&fault.ReplicaStall{Replica: 1, From: 0, Stall: 20 * time.Millisecond},
				&fault.ReplicaCrash{Replica: 2, At: 0},
			},
		},
	}
}

// FleetResult is one fleet load-point measurement with its degraded-mode
// evidence.
type FleetResult struct {
	Name         string  `json:"name"`
	Replicas     int     `json:"replicas"`
	Partitions   int     `json:"partitions"`
	Clients      int     `json:"clients"`
	Requests     int     `json:"requests"`
	Answered     int     `json:"answered"`
	Degraded     int     `json:"degraded"`      // answered with at least one erased partition
	DegradedRate float64 `json:"degraded_rate"` // Degraded / Answered
	Mismatches   int     `json:"mismatches"`    // undegraded answers differing from the exact scan
	Erasures     uint64  `json:"erasures"`      // partition results lost after retries
	Retried      uint64  `json:"retried"`       // dispatch retries performed
	Hedged       uint64  `json:"hedged"`        // straggling dispatches re-issued
	QPS          float64 `json:"qps"`
	P50Us        float64 `json:"p50_us"`
	P95Us        float64 `json:"p95_us"`
	P99Us        float64 `json:"p99_us"`
	Leaked       int     `json:"leaked_goroutines"` // goroutines alive above the pre-fleet baseline
}

// Violations checks a fleet point's acceptance criteria and returns a line
// per violated one: every request answered, healthy-path answers
// bit-identical to the exact scan, faults actually degrading something when
// injected, nothing leaked.
func (r FleetResult) Violations(p FleetPoint) []string {
	var v []string
	if r.Answered != r.Requests {
		v = append(v, fmt.Sprintf("answered %d of %d requests", r.Answered, r.Requests))
	}
	if r.Mismatches != 0 {
		v = append(v, fmt.Sprintf("%d undegraded answers differ from the exact scan", r.Mismatches))
	}
	if len(p.Chaos) > 0 && r.Degraded == 0 {
		v = append(v, "replica faults injected but no answer degraded (soak too small?)")
	}
	if len(p.Chaos) == 0 && r.Degraded != 0 {
		v = append(v, fmt.Sprintf("%d answers degraded with no fault injected", r.Degraded))
	}
	if r.Leaked > 0 {
		v = append(v, fmt.Sprintf("%d goroutines leaked", r.Leaked))
	}
	return v
}

// RunFleet measures the scatter-gather fleet at every load point: Clients
// closed-loop clients ask Requests texts, with per-request latency and the
// fleet's degraded-answer-rate recorded. Undegraded answers are checked
// bit-for-bit against a fault-free exact scan.
func RunFleet(points []FleetPoint) ([]FleetResult, error) {
	f := buildFixtures()
	texts := benchTexts(f, 256)

	// The exact-scan reference every undegraded answer must reproduce.
	enc := benchEncoderFactory()()
	exact := assoc.NewExact(f.mem)
	refIdx := make([]int, len(texts))
	for i, text := range texts {
		q, n := enc.EncodeText(text, benchSeed)
		if n == 0 {
			return nil, fmt.Errorf("perf: empty fleet text %d", i)
		}
		refIdx[i] = exact.Search(q).Index
	}

	var out []FleetResult
	for _, p := range points {
		r, err := runFleetPoint(f, texts, refIdx, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func runFleetPoint(f *fixtures, texts []string, refIdx []int, p FleetPoint) (FleetResult, error) {
	dispatchDeadline := p.Deadline
	if dispatchDeadline == 0 {
		dispatchDeadline = 5 * time.Millisecond
	}
	baseline := runtime.NumGoroutine()
	fl, err := fleet.New(f.mem, benchEncoderFactory(), fleet.Config{
		Replicas:   p.Replicas,
		Partitions: p.Partitions,
		Scheme:     p.Scheme,
		Seed:       benchSeed,
		Deadline:   dispatchDeadline,
		Backoff:    500 * time.Microsecond,
		Cooldown:   16,
		Chaos:      p.Chaos,
	})
	if err != nil {
		return FleetResult{}, err
	}

	type outcome struct {
		text     int
		ans      fleet.Answer
		err      error
		lat      time.Duration
		answered bool
	}
	per := p.Requests / p.Clients
	if per < 1 {
		per = 1
	}
	outs := make([][]outcome, p.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < p.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make([]outcome, 0, per)
			for i := 0; i < per; i++ {
				ti := (c*per + i) % len(texts)
				t0 := time.Now()
				ans, err := fl.Ask(context.Background(), texts[ti])
				mine = append(mine, outcome{text: ti, ans: ans, err: err, lat: time.Since(t0),
					answered: err == nil || errors.Is(err, serve.ErrNoNGrams)})
			}
			outs[c] = mine
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := fl.Stats()
	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_, derr := fl.Drain(dctx)
	cancel()
	if derr != nil {
		return FleetResult{}, fmt.Errorf("perf: fleet drain: %w", derr)
	}

	// Abandoned stall dispatches need their sleep to expire before the
	// leak census.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	name := p.Name
	if name == "" {
		name = fmt.Sprintf("fleet/r%d-p%d-c%d", fl.Replicas(), fl.Partitions(), p.Clients)
	}
	res := FleetResult{
		Name:       name,
		Replicas:   fl.Replicas(),
		Partitions: fl.Partitions(),
		Clients:    p.Clients,
		Requests:   p.Clients * per,
		Erasures:   st.Erasures,
		Retried:    st.Retried,
		Hedged:     st.Hedged,
	}
	var lats []time.Duration
	for _, mine := range outs {
		for _, o := range mine {
			lats = append(lats, o.lat)
			if !o.answered {
				continue
			}
			res.Answered++
			if o.err != nil {
				continue
			}
			if o.ans.Degraded {
				res.Degraded++
			} else if o.ans.Result.Index != refIdx[o.text] {
				res.Mismatches++
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if res.Answered > 0 {
		res.DegradedRate = float64(res.Degraded) / float64(res.Answered)
	}
	res.QPS = float64(len(lats)) / elapsed.Seconds()
	res.P50Us = float64(percentile(lats, 50)) / 1e3
	res.P95Us = float64(percentile(lats, 95)) / 1e3
	res.P99Us = float64(percentile(lats, 99)) / 1e3
	if g := runtime.NumGoroutine(); g > baseline {
		res.Leaked = g - baseline
	}
	return res, nil
}
