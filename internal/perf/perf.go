// Package perf measures the substrate's kernel hot paths — encoding,
// bundling, distance computation, associative search — via the standard
// testing.Benchmark driver, and serializes the results as JSON so the
// benchmark trajectory of the repository can be tracked across commits
// (cmd/hambench -json).
package perf

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"runtime"
	"testing"
	"time"

	"hdam/internal/assoc"
	"hdam/internal/core"
	"hdam/internal/encoder"
	"hdam/internal/hv"
	"hdam/internal/itemmem"
	"hdam/internal/textgen"
)

// Result is one kernel's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is a full kernel-suite run plus enough machine context to compare
// trajectories across commits honestly. Serve holds the closed-loop load
// harness measurements when the run included them.
type Report struct {
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Kernel is the popcount kernel the build selected (core.KernelName), so
	// trajectory entries from generic and GOAMD64=v3 builds stay attributable.
	Kernel    string            `json:"kernel,omitempty"`
	Dim       int               `json:"dim"`
	Classes   int               `json:"classes"`
	Results   []Result          `json:"results"`
	Serve     []ServeResult     `json:"serve,omitempty"`
	Fleet     []FleetResult     `json:"fleet,omitempty"`
	Cascade   []CascadeResult   `json:"cascade,omitempty"`
	ColdStart []ColdStartResult `json:"cold_start,omitempty"`
	Net       []NetResult       `json:"net,omitempty"`
	// RemoteFleet is the over-the-wire scatter-gather chaos soak:
	// coordinator plus TCP replica servers under kills and blackholes.
	RemoteFleet []RemoteFleetResult `json:"remote_fleet,omitempty"`
	// Learn is the train-while-serve harness: search qps/p99 with ingest
	// off vs on, reconcile latency, and the accuracy-vs-examples trajectory
	// as new classes arrive mid-run.
	Learn []LearnResult `json:"learn,omitempty"`
}

// WriteJSON serializes the report, indented for diff-friendly check-in.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Trajectory is the checked-in benchmark history (BENCH.json): one entry per
// recorded run, oldest first, so regressions are visible as diffs instead of
// overwrites.
type Trajectory struct {
	Entries []*Report `json:"entries"`
}

// LoadTrajectory reads a trajectory file. A file in the legacy single-Report
// format (the seed's BENCH.json) is migrated to a one-entry trajectory; a
// missing file yields an empty trajectory.
func LoadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &Trajectory{}, nil
	}
	if err != nil {
		return nil, err
	}
	var tr Trajectory
	if err := json.Unmarshal(data, &tr); err == nil && len(tr.Entries) > 0 {
		return &tr, nil
	}
	var legacy Report
	if err := json.Unmarshal(data, &legacy); err == nil && len(legacy.Results) > 0 {
		return &Trajectory{Entries: []*Report{&legacy}}, nil
	}
	return nil, fmt.Errorf("perf: %s is neither a trajectory nor a report", path)
}

// AppendReport appends rep to the trajectory at path (creating or migrating
// the file as needed) and writes it back indented.
func AppendReport(path string, rep *Report) error {
	tr, err := LoadTrajectory(path)
	if err != nil {
		return err
	}
	tr.Entries = append(tr.Entries, rep)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// resultOf converts a testing.BenchmarkResult.
func resultOf(name string, br testing.BenchmarkResult) Result {
	r := Result{
		Name:        name,
		Iterations:  br.N,
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}
	if br.Bytes > 0 && br.T > 0 {
		r.MBPerSec = float64(br.Bytes) * float64(br.N) / 1e6 / br.T.Seconds()
	}
	return r
}

const (
	benchDim     = hv.Dim // 10,000, the paper's D
	benchClasses = 21     // the paper's language count
	benchSeed    = 2017
)

// KernelName re-exports the popcount kernel this build selected, so commands
// that already depend on perf need not import internal/core for the label.
const KernelName = core.KernelName

// fixtures holds everything the kernel benchmarks share; building it is
// untimed.
type fixtures struct {
	enc      *encoder.Encoder
	sentence string
	chunk    string
	vecs     []*hv.Vector
	mem      *core.Memory
	queries  []*hv.Vector
}

// benchEncoderFactory returns the encoder factory the serve harness hands
// the engine: fresh scratch over the deterministic benchmark item memory.
func benchEncoderFactory() func() *encoder.Encoder {
	return func() *encoder.Encoder {
		im := itemmem.New(benchDim, benchSeed)
		im.Preload(itemmem.LatinAlphabet)
		return encoder.New(im, 3)
	}
}

// benchTexts generates n request texts from the benchmark language models.
func benchTexts(f *fixtures, n int) []string {
	cfg := textgen.DefaultConfig()
	cfg.Seed = benchSeed
	langs := textgen.Catalog(cfg)
	rng := rand.New(rand.NewPCG(benchSeed, 0x5e12e))
	texts := make([]string, n)
	for i := range texts {
		texts[i] = langs[i%len(langs)].GenerateSentence(150, rng)
	}
	return texts
}

func buildFixtures() *fixtures {
	f := &fixtures{}
	im := itemmem.New(benchDim, benchSeed)
	im.Preload(itemmem.LatinAlphabet)
	f.enc = encoder.New(im, 3)

	// Synthetic text from the same generator the experiments train on.
	cfg := textgen.DefaultConfig()
	cfg.Seed = benchSeed
	langs := textgen.Catalog(cfg)
	rng := rand.New(rand.NewPCG(benchSeed, 0xbe7c4))
	f.sentence = langs[0].GenerateSentence(150, rng)
	f.chunk = langs[0].GenerateText(1<<16, rng)

	f.vecs = make([]*hv.Vector, 32)
	for i := range f.vecs {
		f.vecs[i] = hv.Random(benchDim, rng)
	}

	classes := make([]*hv.Vector, benchClasses)
	labels := make([]string, benchClasses)
	for i := range classes {
		classes[i] = hv.Random(benchDim, rng)
		labels[i] = string(rune('a' + i))
	}
	mem, err := core.NewMemory(classes, labels)
	if err != nil {
		panic(err)
	}
	f.mem = mem

	f.queries = make([]*hv.Vector, 32)
	for i := range f.queries {
		f.queries[i] = hv.Random(benchDim, rng)
	}
	return f
}

// kernels is the benchmark suite: name → body. Each body must be steady
// state (all fixtures prebuilt) so allocs/op reflects the hot path alone.
func kernels(f *fixtures) []struct {
	name  string
	bytes int64
	fn    func(b *testing.B)
} {
	acc := hv.NewAccumulator(benchDim, benchSeed)
	bundleAcc := hv.NewAccumulator(benchDim, benchSeed)
	cm := f.mem.ClassMatrix()
	ds := make([]int, benchClasses)
	batch := make([]int, len(f.queries)*benchClasses)
	exact := assoc.NewExact(f.mem)
	noisy := assoc.NewNoisySeeded(f.mem, 200, benchSeed)
	quant := assoc.NewQuantizedSeeded(f.mem, 16, benchSeed)
	var buf []int

	return []struct {
		name  string
		bytes int64
		fn    func(b *testing.B)
	}{
		{"encode/sentence", int64(len(f.sentence)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, n := f.enc.EncodeText(f.sentence, uint64(i)); n == 0 {
					b.Fatal("no n-grams")
				}
			}
		}},
		{"encode/train-64k", int64(len(f.chunk)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				acc.Reset()
				if f.enc.AccumulateText(acc, f.chunk) == 0 {
					b.Fatal("no n-grams")
				}
			}
		}},
		{"accumulate/add", 0, func(b *testing.B) {
			bundleAcc.Reset()
			for i := 0; i < b.N; i++ {
				bundleAcc.Add(f.vecs[i%len(f.vecs)])
			}
		}},
		{"accumulate/add-pair", 0, func(b *testing.B) {
			bundleAcc.Reset()
			for i := 0; i < b.N; i++ {
				bundleAcc.AddPair(f.vecs[i%len(f.vecs)], f.vecs[(i+1)%len(f.vecs)])
			}
		}},
		{"distance/into-21x10k", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cm.DistancesInto(ds, f.queries[i%len(f.queries)])
			}
		}},
		{"distance/batch-32x21x10k", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cm.DistancesBatchInto(batch, f.queries)
			}
		}},
		{"search/exact", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if exact.Search(f.queries[i%len(f.queries)]).Index < 0 {
					b.Fatal("impossible")
				}
			}
		}},
		{"search/noisy-e200", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if noisy.SearchBuf(f.queries[i%len(f.queries)], &buf).Index < 0 {
					b.Fatal("impossible")
				}
			}
		}},
		{"search/quantized-d16", 0, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if quant.SearchBuf(f.queries[i%len(f.queries)], &buf).Index < 0 {
					b.Fatal("impossible")
				}
			}
		}},
	}
}

// RunKernels executes the kernel suite and returns the report.
func RunKernels() *Report {
	f := buildFixtures()
	rep := &Report{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Kernel:    core.KernelName,
		Dim:       benchDim,
		Classes:   benchClasses,
	}
	for _, k := range kernels(f) {
		k := k
		br := testing.Benchmark(func(b *testing.B) {
			if k.bytes > 0 {
				b.SetBytes(k.bytes)
			}
			b.ReportAllocs()
			b.ResetTimer()
			k.fn(b)
		})
		rep.Results = append(rep.Results, resultOf(k.name, br))
	}
	return rep
}
