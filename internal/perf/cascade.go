package perf

import (
	"fmt"
	"sort"
	"time"

	"hdam/internal/assoc"
	"hdam/internal/core"
	"hdam/internal/hv"
	"hdam/internal/lang"
	"hdam/internal/textgen"
)

// CascadeResult is one single-core measurement of the cascaded d-sampled
// searcher against the exact scan on the trained reference langid workload —
// real class vectors and real encoded queries, so the margins the certificate
// exploits are the ones the paper's experiment produces, not synthetic ones.
type CascadeResult struct {
	Name    string `json:"name"`
	Queries int    `json:"queries"` // distinct encoded queries (looped to fill the run)
	Dim     int    `json:"dim"`
	Classes int    `json:"classes"`
	// SliceWords/SliceOffset/SampledBits describe the stage-1 slice; zero for
	// the exact baseline.
	SliceWords  int     `json:"slice_words,omitempty"`
	SliceOffset int     `json:"slice_offset,omitempty"`
	SampledBits int     `json:"sampled_bits,omitempty"`
	QPS         float64 `json:"qps"`
	P50Us       float64 `json:"p50_us"`
	P95Us       float64 `json:"p95_us"`
	P99Us       float64 `json:"p99_us"`
	// Stage1HitRate is the fraction of queries whose stage-1 sampled argmin
	// was already the exact winner (computed against the exact scan by the
	// harness, not trusted from the searcher).
	Stage1HitRate float64 `json:"stage1_hit_rate,omitempty"`
	// WidenRate and AvgShortlist are the cascade's own counters over the run.
	WidenRate    float64 `json:"widen_rate,omitempty"`
	AvgShortlist float64 `json:"avg_shortlist,omitempty"`
	// Mismatches counts answers differing from the exact scan (winner index
	// or distance); the acceptance bar is zero.
	Mismatches int `json:"mismatches"`
	// SpeedupVsExact is QPS over the exact baseline of the same run (1.0 for
	// the baseline itself).
	SpeedupVsExact float64 `json:"speedup_vs_exact,omitempty"`
}

// cascadeWorkload is the trained reference workload shared by the baseline
// and cascade passes.
type cascadeWorkload struct {
	mem     *core.Memory
	queries []*hv.Vector
}

// Reference workload for the cascade harness: enough training for the
// protocol's margin structure, and a query set small enough to stay
// cache-resident across timed passes. That residency is deliberate — on the
// serve path a search always runs on a vector the encoder just wrote, so the
// query is cache-hot; replaying the full 21,000-query protocol instead
// streams ~26 MB of query vectors from DRAM every pass and buries the
// searcher's cost under identical memory traffic for every searcher
// measured. Full-protocol (DefaultParams) runs stay the job of
// internal/experiments, which measure accuracy, not search cost.
const (
	cascadeTrainChars  = 100_000
	cascadeTestPerLang = 25
)

// buildCascadeWorkload trains the langid model and pre-encodes the test-set
// queries, so the timed loops measure search alone.
func buildCascadeWorkload(trainChars, perLang int) (*cascadeWorkload, error) {
	cfg := textgen.DefaultConfig()
	cfg.Seed = benchSeed
	langs := textgen.Catalog(cfg)
	p := lang.DefaultParams()
	p.TrainChars = cascadeTrainChars
	p.TestPerLang = cascadeTestPerLang
	if trainChars > 0 {
		p.TrainChars = trainChars
	}
	if perLang > 0 {
		p.TestPerLang = perLang
	}
	tr, err := lang.Train(langs, p)
	if err != nil {
		return nil, err
	}
	ts := lang.MakeTestSet(langs, p)
	ts.Encode(tr)
	if len(ts.Queries) == 0 {
		return nil, fmt.Errorf("perf: cascade workload produced no queries")
	}
	return &cascadeWorkload{mem: tr.Memory, queries: ts.Queries}, nil
}

// cascadeTrials is how many independently-clocked bulk passes timeSearcher
// runs; the fastest is reported, so scheduler noise on a shared machine
// (which can only slow a pass down) doesn't masquerade as searcher cost.
const cascadeTrials = 5

// timeSearcher measures s over the query set: cascadeTrials bulk passes of
// rounds/cascadeTrials untimed-per-query rounds each, clocked as wholes for
// throughput (so per-query timer reads don't tax the hot loop) with the
// fastest pass reported, then one instrumented pass for latency percentiles.
func timeSearcher(s core.BufferedSearcher, queries []*hv.Vector, rounds int) (searches int, elapsed time.Duration, lats []time.Duration) {
	var buf []int
	perTrial := rounds / cascadeTrials
	if perTrial < 1 {
		perTrial = 1
	}
	for trial := 0; trial < cascadeTrials; trial++ {
		start := time.Now()
		for round := 0; round < perTrial; round++ {
			for _, q := range queries {
				if s.SearchBuf(q, &buf).Index < 0 {
					panic("perf: impossible winner")
				}
			}
		}
		if t := time.Since(start); trial == 0 || t < elapsed {
			elapsed = t
		}
	}
	lats = make([]time.Duration, 0, len(queries))
	for _, q := range queries {
		t0 := time.Now()
		if s.SearchBuf(q, &buf).Index < 0 {
			panic("perf: impossible winner")
		}
		lats = append(lats, time.Since(t0))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return perTrial * len(queries), elapsed, lats
}

// cascadeResultOf summarizes one timed pass.
func cascadeResultOf(name string, w *cascadeWorkload, searches int, elapsed time.Duration, lats []time.Duration) CascadeResult {
	return CascadeResult{
		Name:    name,
		Queries: len(w.queries),
		Dim:     w.mem.Dim(),
		Classes: w.mem.Classes(),
		QPS:     float64(searches) / elapsed.Seconds(),
		P50Us:   float64(percentile(lats, 50)) / 1e3,
		P95Us:   float64(percentile(lats, 95)) / 1e3,
		P99Us:   float64(percentile(lats, 99)) / 1e3,
	}
}

// RunCascade measures the exact single-core scan and the cascaded searcher on
// the trained reference workload: qps and latency percentiles for both,
// stage-1 hit-rate, widen-rate and average shortlist for the cascade, and the
// mismatch count against the exact answers (which must be zero). trainChars
// and perLang default to the harness's reference workload when ≤ 0; rounds
// scales how many passes of the query set are timed (≥ 1).
func RunCascade(trainChars, perLang, rounds int) ([]CascadeResult, error) {
	w, err := buildCascadeWorkload(trainChars, perLang)
	if err != nil {
		return nil, err
	}
	if rounds < 1 {
		// Default to ~50k timed searches so qps is stable even though one
		// protocol pass is only a few hundred queries.
		rounds = (50_000 + len(w.queries) - 1) / len(w.queries)
	}
	casc, err := assoc.NewCascade(w.mem, assoc.CascadeConfig{SliceOffset: -1})
	if err != nil {
		return nil, err
	}

	// Exact answers once, for the mismatch audit and the stage-1 hit-rate.
	cm := w.mem.ClassMatrix()
	exactIdx := make([]int, len(w.queries))
	exactDist := make([]int, len(w.queries))
	hits := 0
	sampled := make([]int, w.mem.Classes())
	for i, q := range w.queries {
		exactIdx[i], exactDist[i] = cm.Nearest(q)
		cm.RangeDistancesInto(sampled, q, casc.SliceOffset(), casc.SliceOffset()+casc.SliceWords())
		si := 0
		for r := 1; r < len(sampled); r++ {
			if sampled[r] < sampled[si] {
				si = r
			}
		}
		if si == exactIdx[i] {
			hits++
		}
	}

	exact := assoc.NewExact(w.mem)
	n, elapsed, lats := timeSearcher(exact, w.queries, rounds)
	base := cascadeResultOf("cascade/exact-baseline", w, n, elapsed, lats)
	base.SpeedupVsExact = 1

	// Timed cascade pass, then an untimed audit pass for mismatches.
	n, elapsed, lats = timeSearcher(casc, w.queries, rounds)
	res := cascadeResultOf("cascade/sampled", w, n, elapsed, lats)
	res.SliceWords = casc.SliceWords()
	res.SliceOffset = casc.SliceOffset()
	res.SampledBits = casc.SampledBits()
	res.Stage1HitRate = float64(hits) / float64(len(w.queries))
	st := casc.Stats()
	res.WidenRate = st.WidenRate()
	res.AvgShortlist = st.AvgShortlist()
	if base.QPS > 0 {
		res.SpeedupVsExact = res.QPS / base.QPS
	}
	var buf []int
	for i, q := range w.queries {
		r := casc.SearchBuf(q, &buf)
		if r.Index != exactIdx[i] || r.Distance != exactDist[i] {
			res.Mismatches++
		}
	}
	return []CascadeResult{base, res}, nil
}
