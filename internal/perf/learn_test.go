package perf

import (
	"testing"
	"time"
)

// TestLearnHarnessShort runs a reduced train-while-serve sweep and checks
// the invariants hambench -learn relies on: the baseline phase carries no
// ingest counters, the on-phase hot-swaps several generations into the
// live engine, and the accuracy trajectory actually learns the languages
// that arrive mid-run. Short-mode friendly so `make ci` can use it as the
// learn smoke.
func TestLearnHarnessShort(t *testing.T) {
	results, err := RunLearn(LearnLoad{
		Duration:  time.Second,
		Clients:   4,
		Ingesters: 2,
		BaseLangs: 6,
		NewLangs:  2,
		PerLang:   30,
		Eval:      15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want baseline + ingest-on", len(results))
	}
	off, on := results[0], results[1]
	if off.IngestOn || off.Ingested != 0 || off.Reconciles != 0 {
		t.Errorf("baseline carries ingest counters: %+v", off)
	}
	if off.Requests == 0 || on.Requests == 0 {
		t.Fatalf("empty measurement: off %d, on %d requests", off.Requests, on.Requests)
	}
	if !on.IngestOn {
		t.Error("second phase not marked ingest-on")
	}
	if on.Swaps < 3 {
		t.Errorf("ingest-on phase swapped %d generations, want >= 3", on.Swaps)
	}
	if on.Ingested == 0 {
		t.Error("ingest-on phase ingested nothing")
	}
	if len(on.Accuracy) < 2 {
		t.Fatalf("accuracy trajectory has %d points, want base + >=1 generation", len(on.Accuracy))
	}
	if first := on.Accuracy[0]; first.Gen != 0 || first.Accuracy != 0 {
		t.Errorf("trajectory must start at the ignorant base model, got %+v", first)
	}
	last := on.Accuracy[len(on.Accuracy)-1]
	if last.Accuracy < 0.6 {
		t.Errorf("final new-language accuracy %.2f, want >= 0.6", last.Accuracy)
	}
	if last.Classes != 8 {
		t.Errorf("final generation serves %d classes, want 8", last.Classes)
	}
	for _, r := range results {
		t.Logf("%s: %.0f qps, p50 %.1fµs p99 %.1fµs, ingest %.0f/s, swaps %d",
			r.Name, r.SearchQPS, r.P50Us, r.P99Us, r.IngestQPS, r.Swaps)
	}
	for _, a := range on.Accuracy {
		t.Logf("  gen %d: %d examples, %d classes, accuracy %.2f", a.Gen, a.Examples, a.Classes, a.Accuracy)
	}
}
