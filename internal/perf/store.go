package perf

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hdam/internal/assoc"
	"hdam/internal/lang"
	"hdam/internal/store"
	"hdam/internal/textgen"
)

// ColdStartResult compares the two ways to get a serving model: training it
// from the corpus versus loading a saved snapshot (mmap zero-copy on
// linux). Load timing includes full checksum validation — the honest cost
// of a trust-nothing cold start.
type ColdStartResult struct {
	Name          string  `json:"name"`
	TrainMs       float64 `json:"train_ms"`         // training from the corpus
	SaveMs        float64 `json:"save_ms"`          // capture + atomic write
	LoadMs        float64 `json:"load_ms"`          // store.Open incl. validation
	Speedup       float64 `json:"speedup_vs_train"` // (train+save) / load
	SnapshotBytes int64   `json:"snapshot_bytes"`   // file size on disk
	ZeroCopy      bool    `json:"zero_copy"`        // matrix served from mmap
	BitIdentical  bool    `json:"bit_identical"`    // loaded model scores identically
}

// ColdStartConfig sizes one cold-start measurement point.
type ColdStartConfig struct {
	Dim         int
	TrainChars  int
	TestPerLang int
	Seed        uint64
}

// DefaultColdStartConfigs is the recorded trajectory point: the paper's
// dimensionality over a reduced corpus, enough for training to dominate.
func DefaultColdStartConfigs() []ColdStartConfig {
	return []ColdStartConfig{
		{Dim: benchDim, TrainChars: 50_000, TestPerLang: 50, Seed: benchSeed},
	}
}

// RunColdStart measures every configured point.
func RunColdStart(cfgs []ColdStartConfig) ([]ColdStartResult, error) {
	var out []ColdStartResult
	for _, c := range cfgs {
		r, err := runColdStart(c)
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}

func runColdStart(c ColdStartConfig) (*ColdStartResult, error) {
	cfg := textgen.DefaultConfig()
	cfg.Seed = c.Seed
	langs := textgen.Catalog(cfg)
	p := lang.DefaultParams()
	p.Dim = c.Dim
	p.TrainChars = c.TrainChars
	p.TestPerLang = c.TestPerLang
	p.Seed = c.Seed

	t0 := time.Now()
	tr, err := lang.Train(langs, p)
	if err != nil {
		return nil, err
	}
	trainD := time.Since(t0)

	dir, err := os.MkdirTemp("", "hdam-coldstart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.hds")

	t1 := time.Now()
	snap, err := store.Capture(tr.Memory,
		store.Config{Dim: p.Dim, NGram: p.NGram, Seed: p.Seed},
		store.Provenance{Trainer: "perf coldstart", CorpusSeed: p.Seed})
	if err != nil {
		return nil, err
	}
	if err := store.Save(path, snap); err != nil {
		return nil, err
	}
	saveD := time.Since(t1)
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}

	t2 := time.Now()
	loaded, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	defer loaded.Close()
	loadD := time.Since(t2)

	ts := lang.MakeTestSet(langs, p)
	ts.Encode(tr)
	want := lang.Evaluate(assoc.NewExact(tr.Memory), tr.Memory, ts)
	got := lang.Evaluate(assoc.NewExact(loaded.Memory()), loaded.Memory(), ts)
	identical := want.Correct == got.Correct && want.Total == got.Total

	r := &ColdStartResult{
		Name:          fmt.Sprintf("coldstart/D%d-train%dk", c.Dim, c.TrainChars/1000),
		TrainMs:       float64(trainD.Microseconds()) / 1e3,
		SaveMs:        float64(saveD.Microseconds()) / 1e3,
		LoadMs:        float64(loadD.Microseconds()) / 1e3,
		SnapshotBytes: st.Size(),
		ZeroCopy:      loaded.ZeroCopy(),
		BitIdentical:  identical,
	}
	if loadD > 0 {
		r.Speedup = float64(trainD+saveD) / float64(loadD)
	}
	return r, nil
}
