package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hdam/internal/assoc"
	"hdam/internal/netserve"
	"hdam/internal/serve"
	"hdam/internal/textgen"
)

// NetPoint is one offered-load level of the open-loop network harness.
type NetPoint struct {
	Name       string        // point label ("binary/8k")
	Protocol   string        // "binary" or "http"
	OfferedQPS float64       // open-loop arrival rate, in queries/s
	Duration   time.Duration // measurement window (default 2s)
	Batch      int           // queries per frame / per POST (default 1)
	Conns      int           // client connections (default 4)
	Bursty     bool          // on/off-modulated Poisson arrivals
	ZipfTheta  float64       // query-key skew (default 0.99)
	Keys       int           // distinct query texts (default 512)
}

// NetResult is one measured point. Latency percentiles are computed from
// each request's *intended* send time under the open-loop schedule, so a
// stalled server inflates the tail instead of silently slowing the
// generator (no coordinated omission).
type NetResult struct {
	Name       string  `json:"name"`
	Protocol   string  `json:"protocol"`
	OfferedQPS float64 `json:"offered_qps"`
	QPS        float64 `json:"qps"` // answered-OK throughput
	Requests   int     `json:"requests"`
	Conns      int     `json:"conns"`
	Batch      int     `json:"batch"`
	Bursty     bool    `json:"bursty,omitempty"`
	ZipfTheta  float64 `json:"zipf_theta"`
	P50Us      float64 `json:"p50_us"`
	P95Us      float64 `json:"p95_us"`
	P99Us      float64 `json:"p99_us"`
	P999Us     float64 `json:"p999_us"`
	// ShedRate is the fraction refused by admission control (overloaded /
	// drained) — the server protecting its tail. ErrorRate is everything
	// else that failed (transport errors, internal faults).
	ShedRate  float64 `json:"shed_rate"`
	ErrorRate float64 `json:"error_rate"`
}

// DefaultNetLoads is the sweep make bench -net records: both protocols at
// increasing offered load, ending past saturation so the overload behavior
// (shed, not latency collapse) is on the record, plus a bursty and a
// batched binary point.
func DefaultNetLoads(dur time.Duration) []NetPoint {
	return []NetPoint{
		// HTTP/1.1 carries one request per connection, so its points get
		// enough connections that the protocol cost — not the connection
		// count — is what saturates.
		{Name: "http/1k", Protocol: "http", OfferedQPS: 1000, Conns: 64, Duration: dur},
		{Name: "http/10k", Protocol: "http", OfferedQPS: 10000, Conns: 64, Duration: dur},
		{Name: "http/16k-overload", Protocol: "http", OfferedQPS: 16000, Conns: 256, Duration: dur},
		{Name: "binary/5k", Protocol: "binary", OfferedQPS: 5000, Duration: dur},
		{Name: "binary/15k", Protocol: "binary", OfferedQPS: 15000, Duration: dur},
		{Name: "binary/40k-overload", Protocol: "binary", OfferedQPS: 40000, Duration: dur},
		{Name: "binary/15k-bursty", Protocol: "binary", OfferedQPS: 15000, Duration: dur, Bursty: true},
		{Name: "binary/30k-batch8", Protocol: "binary", OfferedQPS: 30000, Duration: dur, Batch: 8},
		{Name: "binary/50k-batch32", Protocol: "binary", OfferedQPS: 50000, Duration: dur, Batch: 32},
	}
}

func (p NetPoint) withDefaults() NetPoint {
	if p.Duration <= 0 {
		p.Duration = 2 * time.Second
	}
	if p.Batch <= 0 {
		p.Batch = 1
	}
	if p.Conns <= 0 {
		p.Conns = 4
	}
	if p.ZipfTheta <= 0 || p.ZipfTheta >= 1 {
		p.ZipfTheta = 0.99
	}
	if p.Keys <= 0 {
		p.Keys = 512
	}
	return p
}

// NetTexts generates short query texts: at ~12 characters the backend
// costs ~5-15µs per query, so the measurement contrasts the two wire
// protocols instead of re-measuring the encoder. Texts rotate through the
// language catalog, so zipf-skewed key choice skews class mix too.
func NetTexts(n int) []string {
	cfg := textgen.DefaultConfig()
	cfg.Seed = benchSeed
	langs := textgen.Catalog(cfg)
	rng := rand.New(rand.NewPCG(benchSeed, 0x0e7))
	texts := make([]string, n)
	for i := range texts {
		texts[i] = langs[i%len(langs)].GenerateSentence(12, rng)
	}
	return texts
}

// maxInflight bounds the generator's outstanding requests; an arrival that
// would exceed it is recorded as client-shed instead of spawning
// unboundedly when the server is past saturation. Binary connections are
// multiplexed, so the bound is global; HTTP/1.1 carries one request per
// connection, so outstanding work beyond ~2× the connection count would
// only measure the generator's own transport queue — those arrivals shed
// at arrival time instead.
const maxInflight = 4096

func inflightCap(p NetPoint) int64 {
	if p.Protocol == "http" && 2*p.Conns < maxInflight {
		return int64(2 * p.Conns)
	}
	return maxInflight
}

// outcome classification for one request.
const (
	outcomeOK = iota
	outcomeShed
	outcomeErr
)

// netCollector accumulates per-request outcomes from all dispatchers.
type netCollector struct {
	mu   sync.Mutex
	lats []time.Duration // answered-OK latency from intended send
	ok   int
	shed int
	errs int
	last atomic.Int64 // latest completion, ns offset from start
}

func (c *netCollector) record(kind int, lat time.Duration, n int, done time.Duration) {
	c.mu.Lock()
	switch kind {
	case outcomeOK:
		c.ok += n
		for i := 0; i < n; i++ {
			c.lats = append(c.lats, lat)
		}
	case outcomeShed:
		c.shed += n
	default:
		c.errs += n
	}
	c.mu.Unlock()
	for {
		old := c.last.Load()
		if int64(done) <= old || c.last.CompareAndSwap(old, int64(done)) {
			return
		}
	}
}

// RunNet boots a fresh engine + network server per point and drives the
// open-loop schedule against it, returning one NetResult per point.
func RunNet(points []NetPoint) ([]NetResult, error) {
	f := buildFixtures()
	texts := NetTexts(1024)
	out := make([]NetResult, 0, len(points))
	for _, p := range points {
		res, err := runNetPoint(f, texts, p.withDefaults())
		if err != nil {
			return out, fmt.Errorf("net point %s: %w", p.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func runNetPoint(f *fixtures, texts []string, p NetPoint) (NetResult, error) {
	eng, err := serve.New(f.mem, assoc.NewExact(f.mem), benchEncoderFactory(), serve.Config{
		Workers:  runtime.GOMAXPROCS(0),
		MaxBatch: 64,
		Queue:    512,
		Policy:   serve.Reject, // overload must shed, not queue without bound
		Seed:     benchSeed,
	})
	if err != nil {
		return NetResult{}, err
	}
	srv, err := netserve.New(netserve.EngineBackend(eng), netserve.Config{
		BinaryAddr: "127.0.0.1:0",
		HTTPAddr:   "127.0.0.1:0",
	})
	if err != nil {
		eng.Close()
		return NetResult{}, err
	}
	defer srv.Close()
	return DriveNetPoint(srv.BinaryAddr().String(), srv.HTTPAddr().String(), texts, p)
}

// DriveNetPoint runs one open-loop load point against an already-running
// server (in-process or external — cmd/hamload targets a live hamserve).
// The point's protocol selects which address is used.
func DriveNetPoint(binAddr, httpAddr string, texts []string, p NetPoint) (NetResult, error) {
	p = p.withDefaults()
	if p.Keys > len(texts) {
		p.Keys = len(texts)
	}
	rng := rand.New(rand.NewPCG(benchSeed, 0x10ad))
	zipf := NewZipf(uint64(p.Keys), p.ZipfTheta, rng)
	sched := arrivalSchedule(p, rng)
	if len(sched) == 0 {
		return NetResult{}, fmt.Errorf("no arrivals for %s", p.Name)
	}

	col := &netCollector{}
	var inflight atomic.Int64
	var wg sync.WaitGroup // dispatchers
	var reqWG sync.WaitGroup

	// Each arrival's frame of texts is drawn up front so dispatchers spend
	// the window on pacing and I/O only.
	frames := make([][]string, len(sched))
	for i := range frames {
		frame := make([]string, p.Batch)
		for j := range frame {
			frame[j] = texts[zipf.Next()]
		}
		frames[i] = frame
	}

	var send func(conn int, frame []string, intended time.Duration, start time.Time)
	var warm func(conn int)
	switch p.Protocol {
	case "binary":
		if binAddr == "" {
			return NetResult{}, fmt.Errorf("point %s: no binary address", p.Name)
		}
		clients := make([]*netserve.Client, p.Conns)
		for i := range clients {
			c, err := netserve.Dial(binAddr, 2*time.Second)
			if err != nil {
				return NetResult{}, err
			}
			defer c.Close()
			clients[i] = c
		}
		warm = func(conn int) { clients[conn].Ask(frames[0], 0) }
		send = func(conn int, frame []string, intended time.Duration, start time.Time) {
			ch, err := clients[conn].Go(frame, 0)
			if err != nil {
				reqWG.Done()
				inflight.Add(-1)
				col.record(outcomeErr, 0, len(frame), time.Since(start))
				return
			}
			go func() {
				defer reqWG.Done()
				defer inflight.Add(-1)
				b := <-ch
				done := time.Since(start)
				if b.Err != nil {
					col.record(outcomeErr, 0, len(frame), done)
					return
				}
				lat := done - intended
				nOK, nShed, nErr := 0, 0, 0
				for _, a := range b.Answers {
					switch a.Status {
					case netserve.StatusOK, netserve.StatusNoNGrams:
						nOK++
					case netserve.StatusOverloaded, netserve.StatusDrained:
						nShed++
					default:
						nErr++
					}
				}
				col.record(outcomeOK, lat, nOK, done)
				col.record(outcomeShed, 0, nShed, done)
				col.record(outcomeErr, 0, nErr, done)
			}()
		}
	case "http":
		if httpAddr == "" {
			return NetResult{}, fmt.Errorf("point %s: no http address", p.Name)
		}
		tr := &http.Transport{
			MaxIdleConns:        p.Conns,
			MaxIdleConnsPerHost: p.Conns,
			MaxConnsPerHost:     p.Conns,
		}
		defer tr.CloseIdleConnections()
		hc := &http.Client{Transport: tr, Timeout: 30 * time.Second}
		url := "http://" + httpAddr + "/classify"
		warm = func(int) {
			body, _ := json.Marshal(map[string]any{"texts": frames[0]})
			if resp, err := hc.Post(url, "application/json", bytes.NewReader(body)); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		send = func(conn int, frame []string, intended time.Duration, start time.Time) {
			go func() {
				defer reqWG.Done()
				defer inflight.Add(-1)
				body, _ := json.Marshal(map[string]any{"texts": frame})
				resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
				done := time.Since(start)
				if err != nil {
					col.record(outcomeErr, 0, len(frame), done)
					return
				}
				var cr struct {
					Answers []struct {
						Err string `json:"err"`
					} `json:"answers"`
				}
				derr := json.NewDecoder(resp.Body).Decode(&cr)
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable {
					col.record(outcomeShed, 0, len(frame), done) // refused at the http in-flight cap
					return
				}
				if resp.StatusCode != http.StatusOK || derr != nil {
					col.record(outcomeErr, 0, len(frame), done)
					return
				}
				lat := done - intended
				nOK, nShed := 0, 0
				for _, a := range cr.Answers {
					if a.Err == "" {
						nOK++
					} else {
						nShed++ // engine refusals surface as per-answer errors
					}
				}
				col.record(outcomeOK, lat, nOK, done)
				col.record(outcomeShed, 0, nShed, done)
			}()
		}
	default:
		return NetResult{}, fmt.Errorf("unknown protocol %q", p.Protocol)
	}

	// Warm every connection (and the server's hot paths) closed-loop before
	// the measured window opens: connection setup, first-use allocation, and
	// heap growth otherwise land in the first point's tail.
	var warmWG sync.WaitGroup
	for conn := 0; conn < p.Conns; conn++ {
		warmWG.Add(1)
		go func(conn int) {
			defer warmWG.Done()
			for i := 0; i < 16; i++ {
				warm(conn)
			}
		}(conn)
	}
	warmWG.Wait()

	// Dispatchers: round-robin arrivals across connections, each pacing its
	// own sub-schedule. Arrivals overdue at wake-up dispatch immediately in
	// a burst — correct under open-loop accounting because latency is
	// measured from the intended time, not the actual send.
	limit := inflightCap(p)
	start := time.Now()
	for conn := 0; conn < p.Conns; conn++ {
		wg.Add(1)
		go func(conn int) {
			defer wg.Done()
			for i := conn; i < len(sched); i += p.Conns {
				intended := sched[i]
				if d := intended - time.Since(start); d > 0 {
					time.Sleep(d)
				}
				if inflight.Add(1) > limit {
					inflight.Add(-1)
					col.record(outcomeShed, 0, len(frames[i]), time.Since(start))
					continue
				}
				reqWG.Add(1)
				send(conn, frames[i], intended, start)
			}
		}(conn)
	}
	wg.Wait()
	reqWG.Wait()

	sort.Slice(col.lats, func(i, j int) bool { return col.lats[i] < col.lats[j] })
	total := col.ok + col.shed + col.errs
	elapsed := time.Duration(col.last.Load())
	if elapsed <= 0 {
		elapsed = p.Duration
	}
	return NetResult{
		Name:       p.Name,
		Protocol:   p.Protocol,
		OfferedQPS: p.OfferedQPS,
		QPS:        float64(col.ok) / elapsed.Seconds(),
		Requests:   total,
		Conns:      p.Conns,
		Batch:      p.Batch,
		Bursty:     p.Bursty,
		ZipfTheta:  p.ZipfTheta,
		P50Us:      float64(percentile(col.lats, 50)) / 1e3,
		P95Us:      float64(percentile(col.lats, 95)) / 1e3,
		P99Us:      float64(percentile(col.lats, 99)) / 1e3,
		P999Us:     float64(percentile(col.lats, 99.9)) / 1e3,
		ShedRate:   float64(col.shed) / float64(total),
		ErrorRate:  float64(col.errs) / float64(total),
	}, nil
}

// arrivalSchedule lays out the point's intended send times: Poisson
// interarrivals at the offered frame rate; in bursty mode the process runs
// at double rate during the on-half of a 100ms square wave and is silent
// in the off-half, preserving the average.
func arrivalSchedule(p NetPoint, rng *rand.Rand) []time.Duration {
	const cycle, onFrac = 0.1, 0.5
	frameRate := p.OfferedQPS / float64(p.Batch)
	if p.Bursty {
		frameRate /= onFrac
	}
	end := p.Duration.Seconds()
	var out []time.Duration
	t := 0.0
	for {
		t += rng.ExpFloat64() / frameRate
		if p.Bursty {
			if phase := math.Mod(t, cycle); phase >= cycle*onFrac {
				// Landed in the off window: carry over to the next on window.
				t += cycle - phase
			}
		}
		if t >= end {
			return out
		}
		out = append(out, time.Duration(t*float64(time.Second)))
	}
}
