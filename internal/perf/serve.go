package perf

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"hdam/internal/assoc"
	"hdam/internal/serve"
)

// ServeResult is one closed-loop load-harness measurement of the
// micro-batching serve engine (or its serial baseline).
type ServeResult struct {
	Name     string  `json:"name"`
	Workers  int     `json:"workers"`   // engine workers (0 for the serial baseline)
	MaxBatch int     `json:"max_batch"` // micro-batch cap (0 for the serial baseline)
	Clients  int     `json:"clients"`   // concurrent closed-loop clients
	Requests int     `json:"requests"`  // total requests measured
	QPS      float64 `json:"qps"`
	P50Us    float64 `json:"p50_us"`
	P95Us    float64 `json:"p95_us"`
	P99Us    float64 `json:"p99_us"`
	AvgBatch float64 `json:"avg_batch,omitempty"`
	// SpeedupVsSerial is QPS over the serial single-query-loop baseline of
	// the same run (1.0 for the baseline itself).
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// ServeLoad configures one load point of the harness.
type ServeLoad struct {
	Workers  int           // engine workers
	MaxBatch int           // micro-batch cap
	MaxDelay time.Duration // batching delay window
	Clients  int           // concurrent closed-loop clients
	Requests int           // total requests across all clients
	Shards   int           // distance-kernel shards (0 = serial kernel)
}

// DefaultServeLoads is the sweep make bench records: the serial baseline is
// always measured first, then the engine at increasing concurrency.
func DefaultServeLoads(requests int) []ServeLoad {
	return []ServeLoad{
		{Workers: 1, MaxBatch: 32, Clients: 1, Requests: requests},
		{Workers: 1, MaxBatch: 32, Clients: 4, Requests: requests},
		{Workers: 4, MaxBatch: 32, Clients: 16, Requests: requests, Shards: 4},
	}
}

// runServeLoad drives one closed-loop load point: Clients goroutines each
// submit Requests/Clients texts back-to-back, recording per-request latency.
func runServeLoad(f *fixtures, texts []string, load ServeLoad) (ServeResult, error) {
	mem := f.mem
	if load.Shards > 1 {
		mem = mem.WithSharding(load.Shards)
		defer mem.Sharding().Close()
	}
	newEnc := benchEncoderFactory()
	eng, err := serve.New(mem, assoc.NewExact(mem), newEnc, serve.Config{
		Workers:  load.Workers,
		MaxBatch: load.MaxBatch,
		MaxDelay: load.MaxDelay,
		Seed:     benchSeed,
	})
	if err != nil {
		return ServeResult{}, err
	}
	defer eng.Close()

	per := load.Requests / load.Clients
	if per < 1 {
		per = 1
	}
	lats := make([][]time.Duration, load.Clients)
	var wg sync.WaitGroup
	errs := make(chan error, load.Clients)
	start := time.Now()
	for c := 0; c < load.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				text := texts[(c*per+i)%len(texts)]
				t0 := time.Now()
				if _, err := eng.Submit(context.Background(), text); err != nil {
					errs <- err
					return
				}
				mine = append(mine, time.Since(t0))
			}
			lats[c] = mine
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return ServeResult{}, err
	default:
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	st := eng.Stats()
	return ServeResult{
		Name:     fmt.Sprintf("serve/engine-w%d-b%d-c%d", load.Workers, load.MaxBatch, load.Clients),
		Workers:  load.Workers,
		MaxBatch: load.MaxBatch,
		Clients:  load.Clients,
		Requests: len(all),
		QPS:      float64(len(all)) / elapsed.Seconds(),
		P50Us:    float64(percentile(all, 50)) / 1e3,
		P95Us:    float64(percentile(all, 95)) / 1e3,
		P99Us:    float64(percentile(all, 99)) / 1e3,
		AvgBatch: st.AvgBatch(),
	}, nil
}

// runServeSerial measures the single-query-loop baseline the engine is
// judged against: one goroutine, one encoder, one searcher, no batching.
func runServeSerial(f *fixtures, texts []string, requests int) ServeResult {
	enc := benchEncoderFactory()()
	exact := assoc.NewExact(f.mem)
	var buf []int
	lats := make([]time.Duration, 0, requests)
	start := time.Now()
	for i := 0; i < requests; i++ {
		t0 := time.Now()
		q, n := enc.EncodeText(texts[i%len(texts)], benchSeed)
		if n == 0 {
			panic("perf: empty benchmark text")
		}
		if exact.SearchBuf(q, &buf).Index < 0 {
			panic("perf: impossible winner")
		}
		lats = append(lats, time.Since(t0))
	}
	elapsed := time.Since(start)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return ServeResult{
		Name:            "serve/serial-loop",
		Clients:         1,
		Requests:        requests,
		QPS:             float64(requests) / elapsed.Seconds(),
		P50Us:           float64(percentile(lats, 50)) / 1e3,
		P95Us:           float64(percentile(lats, 95)) / 1e3,
		P99Us:           float64(percentile(lats, 99)) / 1e3,
		SpeedupVsSerial: 1,
	}
}

// RunServe executes the closed-loop serve load harness: the serial baseline
// first, then every load point, with each engine result annotated with its
// speedup over the baseline.
func RunServe(loads []ServeLoad) ([]ServeResult, error) {
	f := buildFixtures()
	texts := benchTexts(f, 256)
	requests := 2048
	if len(loads) > 0 && loads[0].Requests > 0 {
		requests = loads[0].Requests
	}
	serial := runServeSerial(f, texts, requests)
	out := []ServeResult{serial}
	for _, load := range loads {
		if load.Requests <= 0 {
			load.Requests = requests
		}
		r, err := runServeLoad(f, texts, load)
		if err != nil {
			return nil, err
		}
		if serial.QPS > 0 {
			r.SpeedupVsSerial = r.QPS / serial.QPS
		}
		out = append(out, r)
	}
	return out, nil
}
