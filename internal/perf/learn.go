package perf

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hdam/internal/assoc"
	"hdam/internal/core"
	"hdam/internal/learn"
	"hdam/internal/serve"
	"hdam/internal/store"
	"hdam/internal/textgen"
)

// LearnAccuracyPoint is one step of the accuracy-vs-examples trajectory:
// the model right after one reconciled generation, evaluated on held-out
// sentences of the languages that arrived mid-run.
type LearnAccuracyPoint struct {
	Gen      uint64  `json:"gen"`
	Examples uint64  `json:"examples"` // cumulative examples folded
	Classes  int     `json:"classes"`
	Accuracy float64 `json:"new_lang_accuracy"` // held-out, new languages only
}

// LearnResult is one measured phase of the train-while-serve harness. The
// ingest-off phase is the search baseline; the ingest-on phase serves the
// same closed-loop search load while labeled examples stream in and
// reconciles hot-swap new generations under it.
type LearnResult struct {
	Name      string  `json:"name"`
	IngestOn  bool    `json:"ingest_on"`
	Clients   int     `json:"clients"` // closed-loop search clients
	Requests  int     `json:"requests"`
	SearchQPS float64 `json:"search_qps"`
	P50Us     float64 `json:"p50_us"`
	P95Us     float64 `json:"p95_us"`
	P99Us     float64 `json:"p99_us"`
	// P99DeltaPct is the ingest-on p99 over the ingest-off baseline of the
	// same run, in percent (0 for the baseline itself).
	P99DeltaPct float64 `json:"p99_delta_pct,omitempty"`
	// Ingest-side counters; zero in the baseline phase.
	IngestQPS      float64 `json:"ingest_qps,omitempty"`
	Ingested       uint64  `json:"ingested,omitempty"`
	Reconciles     uint64  `json:"reconciles,omitempty"`
	Swaps          uint64  `json:"swaps,omitempty"`
	ReconcileP50Us float64 `json:"reconcile_p50_us,omitempty"`
	ReconcileMaxUs float64 `json:"reconcile_max_us,omitempty"`
	// Accuracy is the accuracy-vs-examples trajectory on the languages that
	// arrived mid-run (gen 0 is the pre-ingest base model: always 0).
	Accuracy []LearnAccuracyPoint `json:"accuracy,omitempty"`
}

// LearnLoad configures the train-while-serve harness.
type LearnLoad struct {
	Duration  time.Duration // measurement window per phase (default 2s)
	Clients   int           // closed-loop search clients (default 8)
	Ingesters int           // concurrent ingest writers (default 4)
	// IngestRate paces the ingest side (examples/s across all writers,
	// default 2000): train-while-serve workloads arrive at a bounded rate,
	// so the measured search impact is at a stated ingest throughput rather
	// than at ingest saturation.
	IngestRate float64
	BaseLangs  int // languages trained before serving starts (default 18)
	NewLangs   int // languages arriving mid-run (default 3)
	PerLang    int // offline training examples per base language (default 60)
	Eval       int // held-out sentences per new language (default 40)
}

func (l LearnLoad) withDefaults() LearnLoad {
	if l.Duration <= 0 {
		l.Duration = 2 * time.Second
	}
	if l.Clients <= 0 {
		l.Clients = 8
	}
	if l.Ingesters <= 0 {
		l.Ingesters = 4
	}
	if l.IngestRate <= 0 {
		l.IngestRate = 2000
	}
	if l.BaseLangs <= 0 {
		l.BaseLangs = 18
	}
	if l.NewLangs <= 0 {
		l.NewLangs = 3
	}
	if l.PerLang <= 0 {
		l.PerLang = 60
	}
	if l.Eval <= 0 {
		l.Eval = 40
	}
	return l
}

// RunLearn measures search service quality with online learning off and
// then on: one engine per phase under the same closed-loop search load; the
// on-phase adds concurrent ingest of refresh examples for the base
// languages plus brand-new languages, with periodic reconciles hot-swapping
// each folded generation into the live engine. The returned pair is
// (ingest-off, ingest-on).
func RunLearn(load LearnLoad) ([]LearnResult, error) {
	load = load.withDefaults()
	cfg := textgen.DefaultConfig()
	cfg.Seed = benchSeed
	langs := textgen.Catalog(cfg)
	if load.BaseLangs+load.NewLangs > len(langs) {
		return nil, fmt.Errorf("perf: %d+%d languages exceed the %d-language catalog",
			load.BaseLangs, load.NewLangs, len(langs))
	}
	base, fresh := langs[:load.BaseLangs], langs[load.BaseLangs:load.BaseLangs+load.NewLangs]

	lcfg := learn.Config{Dim: benchDim, NGram: 3, Seed: benchSeed, Trainer: "perf"}

	// The base model, trained through the same fold the learner uses.
	rng := rand.New(rand.NewPCG(benchSeed, 0x1ea5))
	var offline []learn.Example
	for _, l := range base {
		for i := 0; i < load.PerLang; i++ {
			offline = append(offline, learn.Example{Label: l.Name, Text: l.GenerateSentence(100, rng)})
		}
	}
	mem, err := learn.TrainOffline(nil, offline, lcfg)
	if err != nil {
		return nil, err
	}

	// Search queries over the base languages; the mid-run languages are
	// queried only by the accuracy evaluation, not the latency load.
	queries := make([]string, 512)
	for i := range queries {
		queries[i] = base[i%len(base)].GenerateSentence(60, rng)
	}

	off, _, err := runLearnPhase(mem, queries, load, nil)
	if err != nil {
		return nil, fmt.Errorf("perf: learn baseline: %w", err)
	}
	off.Name = "learn/search-ingest-off"

	// Ingest stream: refresh examples for every base language plus the new
	// ones, shuffled so stripes see a realistic mix.
	var stream []learn.Example
	for _, l := range append(append([]*textgen.Language{}, base...), fresh...) {
		for i := 0; i < 4*load.PerLang; i++ {
			stream = append(stream, learn.Example{Label: l.Name, Text: l.GenerateSentence(100, rng)})
		}
	}
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })

	// The snapshot directory outlives the measured phase: the accuracy
	// trajectory reads the published generations back after the window.
	dir, err := os.MkdirTemp("", "perf-learn-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	on, snaps, err := runLearnPhase(mem, queries, load, &learnIngest{cfg: lcfg, stream: stream, dir: dir})
	if err != nil {
		return nil, fmt.Errorf("perf: learn ingest-on: %w", err)
	}
	on.Name = "learn/search-ingest-on"
	if off.P99Us > 0 {
		on.P99DeltaPct = 100 * (on.P99Us - off.P99Us) / off.P99Us
	}

	// The accuracy trajectory, evaluated offline after the measured window
	// so the evaluation never perturbs the latency numbers.
	evalRng := rand.New(rand.NewPCG(benchSeed, 0xe7a1))
	var held []learn.Example
	for _, l := range fresh {
		for i := 0; i < load.Eval; i++ {
			held = append(held, learn.Example{Label: l.Name, Text: l.GenerateSentence(60, evalRng)})
		}
	}
	on.Accuracy = append(on.Accuracy, LearnAccuracyPoint{Gen: 0, Classes: mem.Classes()})
	for _, sp := range snaps {
		pt, err := evalSnapshot(sp, held)
		if err != nil {
			return nil, fmt.Errorf("perf: evaluating %s: %w", sp.path, err)
		}
		on.Accuracy = append(on.Accuracy, pt)
	}

	return []LearnResult{*off, *on}, nil
}

// learnIngest carries the ingest side of the on-phase.
type learnIngest struct {
	cfg    learn.Config
	stream []learn.Example
	dir    string // snapshot directory, owned by the caller
}

// learnSnap remembers one published generation for post-run evaluation.
type learnSnap struct {
	path     string
	gen      uint64
	classes  int
	examples uint64
}

// runLearnPhase drives one phase: closed-loop search clients against a
// fresh engine for the window, with the ingest machinery (learner, registry,
// reconcile ticks) running concurrently when ing is non-nil.
func runLearnPhase(mem *core.Memory, queries []string, load LearnLoad, ing *learnIngest) (*LearnResult, []learnSnap, error) {
	eng, err := serve.New(mem, assoc.NewExact(mem), benchEncoderFactory(), serve.Config{
		Workers:  runtime.GOMAXPROCS(0),
		MaxBatch: 64,
		Queue:    512,
		Seed:     benchSeed,
	})
	if err != nil {
		return nil, nil, err
	}
	defer eng.Close()

	var snaps []learnSnap
	var lr *learn.Learner
	var recLats []time.Duration
	ingestStop := make(chan struct{})
	var ingested atomic.Uint64
	var ingestWG sync.WaitGroup
	if ing != nil {
		reg, err := store.NewRegistry(store.RegistryConfig{
			Dir: ing.dir,
			Swap: func(snap *store.Snapshot) error {
				m, s, err := learn.Model(snap)
				if err != nil {
					return err
				}
				_, err = eng.Swap(m, s, benchEncoderFactory())
				return err
			},
		})
		if err != nil {
			return nil, nil, err
		}
		defer reg.Close()
		cfg := ing.cfg
		cfg.Dir = ing.dir
		cfg.Block = true // ingest backpressure: a full stripe waits, never errors
		cfg.OnSnapshot = func(string) { reg.Check() }
		lr, err = learn.New(mem, cfg)
		if err != nil {
			return nil, nil, err
		}
		defer lr.Close()

		// Each writer paces its share of the ingest rate; an example overdue
		// at wake-up submits immediately.
		gap := time.Duration(float64(load.Ingesters) / load.IngestRate * float64(time.Second))
		for w := 0; w < load.Ingesters; w++ {
			ingestWG.Add(1)
			go func(w int) {
				defer ingestWG.Done()
				t := time.NewTicker(gap)
				defer t.Stop()
				for i := w; ; i += load.Ingesters {
					select {
					case <-ingestStop:
						return
					case <-t.C:
					}
					ex := ing.stream[i%len(ing.stream)]
					if err := lr.Ingest(context.Background(), ex.Label, ex.Text); err != nil {
						return
					}
					ingested.Add(1)
				}
			}(w)
		}
	}

	// Warm the engine's hot paths closed-loop before the window opens, so
	// worker spin-up and first-use allocation land outside the percentiles.
	var warmWG sync.WaitGroup
	for c := 0; c < load.Clients; c++ {
		warmWG.Add(1)
		go func(c int) {
			defer warmWG.Done()
			for i := 0; i < 16; i++ {
				eng.Submit(context.Background(), queries[(c*16+i)%len(queries)])
			}
		}(c)
	}
	warmWG.Wait()

	// Closed-loop search clients for the window.
	deadline := time.Now().Add(load.Duration)
	lats := make([][]time.Duration, load.Clients)
	errs := make(chan error, load.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < load.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var mine []time.Duration
			for i := c; time.Now().Before(deadline); i += load.Clients {
				t0 := time.Now()
				if _, err := eng.Submit(context.Background(), queries[i%len(queries)]); err != nil {
					errs <- err
					return
				}
				mine = append(mine, time.Since(t0))
			}
			lats[c] = mine
		}(c)
	}

	// Reconcile ticks inside the window: four cuts, so the engine hot-swaps
	// several generations while the latency measurement is live.
	if lr != nil {
		tick := load.Duration / 5
		for i := 0; i < 4; i++ {
			time.Sleep(tick)
			rep, err := lr.Reconcile()
			if err != nil {
				errs <- err
				break
			}
			if !rep.Skipped {
				recLats = append(recLats, rep.Duration)
				snaps = append(snaps, learnSnap{
					path: rep.Path, gen: rep.Gen, classes: rep.Classes, examples: rep.Examples,
				})
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(ingestStop)
	ingestWG.Wait()
	select {
	case err := <-errs:
		return nil, nil, err
	default:
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &LearnResult{
		IngestOn:  ing != nil,
		Clients:   load.Clients,
		Requests:  len(all),
		SearchQPS: float64(len(all)) / elapsed.Seconds(),
		P50Us:     float64(percentile(all, 50)) / 1e3,
		P95Us:     float64(percentile(all, 95)) / 1e3,
		P99Us:     float64(percentile(all, 99)) / 1e3,
	}
	if lr != nil {
		sort.Slice(recLats, func(i, j int) bool { return recLats[i] < recLats[j] })
		st := lr.Stats()
		res.IngestQPS = float64(ingested.Load()) / elapsed.Seconds()
		res.Ingested = st.Ingested
		res.Reconciles = st.Reconciles
		res.Swaps = eng.Stats().Swaps
		res.ReconcileP50Us = float64(percentile(recLats, 50)) / 1e3
		if n := len(recLats); n > 0 {
			res.ReconcileMaxUs = float64(recLats[n-1]) / 1e3
		}
	}
	return res, snaps, nil
}

// evalSnapshot loads one published generation and scores the held-out
// examples of the mid-run languages against it.
func evalSnapshot(sp learnSnap, held []learn.Example) (LearnAccuracyPoint, error) {
	snap, err := store.Open(sp.path)
	if err != nil {
		return LearnAccuracyPoint{}, err
	}
	defer snap.Close()
	mem, searcher, err := learn.Model(snap)
	if err != nil {
		return LearnAccuracyPoint{}, err
	}
	enc := benchEncoderFactory()()
	correct := 0
	for _, ex := range held {
		q, n := enc.EncodeText(ex.Text, benchSeed)
		if n == 0 {
			continue
		}
		if mem.Label(searcher.Search(q).Index) == ex.Label {
			correct++
		}
	}
	return LearnAccuracyPoint{
		Gen:      sp.gen,
		Examples: sp.examples,
		Classes:  sp.classes,
		Accuracy: float64(correct) / float64(len(held)),
	}, nil
}
