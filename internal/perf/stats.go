package perf

import (
	"math"
	"time"
)

// percentile returns the p-th percentile (0..100) of sorted durations by
// the rounded nearest-rank method: the element at round(p/100·(n-1)).
// Truncating that rank instead — the old behavior — systematically biased
// tail percentiles low: with 10 samples, p99 landed on index 8 (the 90th
// percentile!) because int(8.91) floors. Every harness (serve, fleet,
// chaos, cascade, net) shares this helper.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Round(p / 100 * float64(len(sorted)-1)))
	if i < 0 {
		i = 0
	}
	if i > len(sorted)-1 {
		i = len(sorted) - 1
	}
	return sorted[i]
}
