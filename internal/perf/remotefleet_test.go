package perf

import (
	"testing"
	"time"
)

// TestRemoteFleetHarnessShort runs the over-the-wire soak small: the name
// matches the `make ci` -run pattern alongside the in-process harnesses.
// In-process replica servers over real TCP here; the subprocess path is
// scripts/remotefleet-smoke.sh and hambench -remotefleet.
func TestRemoteFleetHarnessShort(t *testing.T) {
	if testing.Short() {
		t.Log("short mode: trimmed remote-fleet soak")
	}
	points := DefaultRemoteFleetPoints(512, "")
	for i := range points {
		// The race detector inflates wire latency ~10x; a production
		// deadline would misread that as replica failure. The killed and
		// blackholed replicas still degrade the faulted point.
		points[i].Deadline = 2 * time.Second
	}
	results, err := RunRemoteFleet(points)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		for _, line := range r.Violations(points[i]) {
			t.Errorf("%s violated: %s", r.Name, line)
		}
		t.Logf("%s: %d answered, %d degraded (%.1f%%), %d reconnects, %d failovers, %d remote errors, qps %.0f, p99 %.1fµs",
			r.Name, r.Answered, r.Degraded, 100*r.DegradedRate, r.Reconnects, r.Failovers, r.RemoteErrors, r.QPS, r.P99Us)
	}
}
