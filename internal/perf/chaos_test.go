package perf

import (
	"testing"
	"time"
)

// TestChaosSoakShort runs a reduced chaos soak and enforces the same
// acceptance criteria as hambench -chaos: every request answered, zero
// result corruption, supervised restarts exercised, zero goroutine leaks.
// It is short-mode friendly so `make ci` can use it as the chaos smoke.
func TestChaosSoakShort(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Requests = 256
	cfg.Clients = 8
	cfg.PanicRate = 0.05           // strike often enough for a small soak
	cfg.P99Bound = 5 * time.Second // the race detector inflates latency ~10x
	r, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Violations(cfg); len(v) > 0 {
		for _, line := range v {
			t.Errorf("violated: %s", line)
		}
	}
	t.Logf("%s: %d classified, %d faulted, %d panics, %d restarts, %d hedged, p99 %.1fµs",
		r.Name, r.Classified, r.Faulted, r.Panics, r.Restarts, r.Hedged, r.P99Us)
}
