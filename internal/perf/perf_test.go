package perf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestTrajectoryMigrationAndAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")

	// Missing file: an empty trajectory, not an error.
	tr, err := LoadTrajectory(path)
	if err != nil || len(tr.Entries) != 0 {
		t.Fatalf("missing file: got %v entries, err %v", tr, err)
	}

	// A legacy single-Report file (the seed's format) migrates in place.
	legacy := &Report{GoVersion: "go1.x", NumCPU: 1, Results: []Result{{Name: "k", NsPerOp: 1}}}
	data, _ := json.Marshal(legacy)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err = LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 1 || tr.Entries[0].Results[0].Name != "k" {
		t.Fatalf("legacy migration: got %+v", tr)
	}

	// Appending keeps the seed baseline and adds the new entry after it.
	rep := &Report{GoVersion: "go1.y", NumCPU: 1,
		Results: []Result{{Name: "k", NsPerOp: 2}},
		Serve:   []ServeResult{{Name: "serve/serial-loop", QPS: 100}}}
	if err := AppendReport(path, rep); err != nil {
		t.Fatal(err)
	}
	tr, err = LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 2 {
		t.Fatalf("after append: %d entries, want 2", len(tr.Entries))
	}
	if tr.Entries[0].GoVersion != "go1.x" || tr.Entries[1].GoVersion != "go1.y" {
		t.Fatalf("entries out of order: %q then %q", tr.Entries[0].GoVersion, tr.Entries[1].GoVersion)
	}
	if len(tr.Entries[1].Serve) != 1 || tr.Entries[1].Serve[0].QPS != 100 {
		t.Fatalf("serve section lost in round-trip: %+v", tr.Entries[1].Serve)
	}

	// Garbage is an error, not a silent reset of the history.
	if err := os.WriteFile(path, []byte(`{"nope": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrajectory(path); err == nil {
		t.Fatal("garbage file accepted")
	}
}
