package perf

import (
	"testing"
	"time"
)

// TestFleetHarnessShort runs a reduced fleet sweep and enforces the same
// acceptance criteria as hambench -fleet: every request answered, healthy
// answers bit-identical to the exact scan, faults degrading answers when
// injected and never otherwise, zero goroutine leaks. Short-mode friendly
// so `make ci` can use it as the fleet smoke.
func TestFleetHarnessShort(t *testing.T) {
	points := DefaultFleetPoints(256)
	for i := range points {
		// The race detector inflates dispatch latency ~10x; a production
		// deadline would misread that as replica failure. The crashed
		// replica still degrades the faulted point.
		points[i].Deadline = 2 * time.Second
	}
	results, err := RunFleet(points)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		for _, line := range r.Violations(points[i]) {
			t.Errorf("%s violated: %s", r.Name, line)
		}
		t.Logf("%s: %d answered, %d degraded (%.1f%%), %d erasures, %d retried, qps %.0f, p99 %.1fµs",
			r.Name, r.Answered, r.Degraded, 100*r.DegradedRate, r.Erasures, r.Retried, r.QPS, r.P99Us)
	}
}
