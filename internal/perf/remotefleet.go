package perf

// remotefleet.go: the chaos soak for the remote replica fleet — the
// scatter-gather coordinator speaking the binary partial protocol to
// replica servers over real TCP, under process kills and network
// blackholes. Replicas are in-process netserve servers on loopback by
// default, or real hamserve -replica subprocesses when RemoteFleetPoint
// carries a binary path — the faults are the same either way: one replica
// dies at a third of the run (SIGKILL or listener teardown), another's
// link goes black, both heal at two thirds.
//
// What the soak asserts (Violations): every request answered, healthy
// answers bit-identical to the serial exact scan, degraded answers
// carrying the widened-margin certificate, circuit breakers firing only on
// faulted replicas, reconnect counters covering the injected faults, and
// goroutines AND file descriptors back at baseline after drain.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hdam/internal/assoc"
	"hdam/internal/core"
	"hdam/internal/fault"
	"hdam/internal/fleet"
	"hdam/internal/netserve"
	"hdam/internal/serve"
	"hdam/internal/store"
)

// RemoteFleetPoint configures one remote-fleet soak: a replica/partition
// shape, a closed-loop client load and a fault schedule over thirds of the
// run (faults strike after the first third, heal after the second).
type RemoteFleetPoint struct {
	Name       string
	Replicas   int
	Partitions int
	Scheme     fleet.Scheme
	Clients    int
	Requests   int
	Deadline   time.Duration // per-dispatch deadline (0 = 100ms)

	// KillReplica is the replica whose server process dies at 1/3 of the
	// run and restarts at 2/3 (-1 = none).
	KillReplica int
	// BlackholeReplica is the replica whose link swallows all bytes for
	// the middle third (-1 = none).
	BlackholeReplica int

	// Binary, when set, is a hamserve binary path: replicas run as real
	// -replica subprocesses serving a shared snapshot, and KillReplica is
	// a real SIGKILL. Empty runs in-process servers over real TCP.
	Binary string
}

// DefaultRemoteFleetPoints is the sweep hambench -remotefleet records:
// the healthy remote fleet first (wire answers must stay bit-identical to
// the single-engine scan), then the acceptance topology — 4 replicas over
// 2 partitions with replica 0 killed and replica 2 blackholed, erasing
// partition 0 for the middle third of the run.
func DefaultRemoteFleetPoints(requests int, binary string) []RemoteFleetPoint {
	return []RemoteFleetPoint{
		{
			Name:     "remotefleet/healthy-r4",
			Replicas: 4, Partitions: 2, Clients: 8, Requests: requests,
			KillReplica: -1, BlackholeReplica: -1, Binary: binary,
		},
		{
			Name:     "remotefleet/kill+blackhole-r4",
			Replicas: 4, Partitions: 2, Clients: 8, Requests: requests,
			KillReplica: 0, BlackholeReplica: 2, Binary: binary,
		},
	}
}

// RemoteFleetResult is one remote-fleet soak measurement.
type RemoteFleetResult struct {
	Name         string  `json:"name"`
	Replicas     int     `json:"replicas"`
	Partitions   int     `json:"partitions"`
	Clients      int     `json:"clients"`
	Requests     int     `json:"requests"`
	Answered     int     `json:"answered"`
	Degraded     int     `json:"degraded"`
	DegradedRate float64 `json:"degraded_rate"`
	Mismatches   int     `json:"mismatches"`  // healthy answers differing from the exact scan
	Uncertified  int     `json:"uncertified"` // degraded answers without a coherent widened-margin certificate
	Erasures     uint64  `json:"erasures"`
	Retried      uint64  `json:"retried"`
	Failovers    uint64  `json:"failovers"`     // asks rescued by a mirror after a transport failure
	RemoteErrors uint64  `json:"remote_errors"` // dispatches failed at the transport layer
	Reconnects   uint64  `json:"reconnects"`    // connections re-established across all links
	Kills        int     `json:"kills"`
	Restarts     int     `json:"restarts"`
	// BadBreakerOpens counts breaker opens on replicas no fault targeted.
	BadBreakerOpens uint64  `json:"bad_breaker_opens"`
	QPS             float64 `json:"qps"`
	P50Us           float64 `json:"p50_us"`
	P95Us           float64 `json:"p95_us"`
	P99Us           float64 `json:"p99_us"`
	Leaked          int     `json:"leaked_goroutines"`
	LeakedFDs       int     `json:"leaked_fds"`
	Subprocess      bool    `json:"subprocess"` // replicas were real hamserve processes
}

// Violations checks the soak's acceptance criteria, one line per breach.
func (r RemoteFleetResult) Violations(p RemoteFleetPoint) []string {
	var v []string
	if r.Answered != r.Requests {
		v = append(v, fmt.Sprintf("answered %d of %d requests", r.Answered, r.Requests))
	}
	if r.Mismatches != 0 {
		v = append(v, fmt.Sprintf("%d healthy answers differ from the exact scan", r.Mismatches))
	}
	if r.Uncertified != 0 {
		v = append(v, fmt.Sprintf("%d degraded answers lack the widened-margin certificate", r.Uncertified))
	}
	faulted := p.KillReplica >= 0 || p.BlackholeReplica >= 0
	if faulted && r.Degraded == 0 {
		v = append(v, "faults injected but no answer degraded (soak too small?)")
	}
	if !faulted && r.Degraded != 0 {
		v = append(v, fmt.Sprintf("%d answers degraded with no fault injected", r.Degraded))
	}
	var wantReconnects uint64
	if p.KillReplica >= 0 {
		wantReconnects++
	}
	if p.BlackholeReplica >= 0 {
		wantReconnects++
	}
	if r.Reconnects < wantReconnects {
		v = append(v, fmt.Sprintf("%d reconnects for %d injected link faults", r.Reconnects, wantReconnects))
	}
	if r.BadBreakerOpens != 0 {
		v = append(v, fmt.Sprintf("%d breaker opens on unfaulted replicas", r.BadBreakerOpens))
	}
	if r.Leaked > 0 {
		v = append(v, fmt.Sprintf("%d goroutines leaked", r.Leaked))
	}
	if r.LeakedFDs > 0 {
		v = append(v, fmt.Sprintf("%d file descriptors leaked", r.LeakedFDs))
	}
	return v
}

// replicaHost is one replica server the soak can kill and restart in
// place: its address survives the restart, so the transport's redial loop
// is what heals the fleet.
type replicaHost interface {
	start() error
	kill() error
	close() error
}

// freeAddr reserves a loopback address replicas can re-bind after a kill.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	return addr, ln.Close()
}

// inprocHost serves one partition from an in-process netserve server over
// real TCP. kill tears the listener and engine down; start rebuilds both
// on the pinned address.
type inprocHost struct {
	bind string
	mem  *core.Memory
	sc   fleet.Scheme
	p, n int
	ddl  time.Duration
	mu   sync.Mutex
	srv  *netserve.Server
}

func (h *inprocHost) start() error {
	m, s, err := fleet.PartitionModel(h.mem, h.sc, h.p, h.n)
	if err != nil {
		return err
	}
	eng, err := serve.New(m, s, benchEncoderFactory(), serve.Config{
		Workers: 1, Seed: benchSeed, ReportDistances: true,
	})
	if err != nil {
		return err
	}
	// The pinned port may linger briefly after a kill; retry the bind.
	var srv *netserve.Server
	for attempt := 0; ; attempt++ {
		srv, err = netserve.New(netserve.EngineBackend(eng), netserve.Config{BinaryAddr: h.bind})
		if err == nil {
			break
		}
		if attempt >= 50 {
			eng.Close()
			return fmt.Errorf("perf: rebinding %s: %w", h.bind, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	h.mu.Lock()
	h.srv = srv
	h.mu.Unlock()
	return nil
}

func (h *inprocHost) kill() error {
	h.mu.Lock()
	srv := h.srv
	h.srv = nil
	h.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	return nil
}

func (h *inprocHost) close() error { return h.kill() }

// procHost serves one partition from a real hamserve -replica subprocess
// loading a shared snapshot. kill is a SIGKILL; start re-execs on the
// pinned address.
type procHost struct {
	binary string
	args   []string
	sub    *fault.Subprocess
}

func (h *procHost) start() error {
	if h.sub == nil {
		sub, err := fault.StartSubprocess(h.binary, h.args...)
		if err != nil {
			return err
		}
		h.sub = sub
	} else if err := h.sub.Start(); err != nil {
		return err
	}
	// Snapshot load is fast, but give slow CI machines room.
	_, err := h.sub.WaitLine("listening binary=", 30*time.Second)
	return err
}

func (h *procHost) kill() error  { return h.sub.Kill() }
func (h *procHost) close() error { return h.kill() }

// openFDs counts this process's open file descriptors (-1 where
// /proc/self/fd is unavailable, disabling the FD-leak check).
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// RunRemoteFleet runs the remote-fleet chaos soak at every point.
func RunRemoteFleet(points []RemoteFleetPoint) ([]RemoteFleetResult, error) {
	f := buildFixtures()
	texts := benchTexts(f, 256)

	enc := benchEncoderFactory()()
	exact := assoc.NewExact(f.mem)
	refIdx := make([]int, len(texts))
	for i, text := range texts {
		q, n := enc.EncodeText(text, benchSeed)
		if n == 0 {
			return nil, fmt.Errorf("perf: empty remote-fleet text %d", i)
		}
		refIdx[i] = exact.Search(q).Index
	}

	var out []RemoteFleetResult
	for _, p := range points {
		r, err := runRemoteFleetPoint(f, texts, refIdx, p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func runRemoteFleetPoint(f *fixtures, texts []string, refIdx []int, p RemoteFleetPoint) (RemoteFleetResult, error) {
	deadline := p.Deadline
	if deadline == 0 {
		deadline = 100 * time.Millisecond
	}
	baseGoroutines := runtime.NumGoroutine()
	baseFDs := openFDs()

	// One server per replica, each pinned to an address that survives kills.
	hosts := make([]replicaHost, p.Replicas)
	addrs := make([]string, p.Replicas)
	var snapDir string
	if p.Binary != "" {
		// Real subprocesses need the fixture model on disk: every replica
		// loads the same snapshot and slices its own partition from it.
		snap, err := store.Capture(f.mem,
			store.Config{Dim: benchDim, NGram: 3, Seed: benchSeed},
			store.Provenance{Trainer: "perf remotefleet", CorpusSeed: benchSeed})
		if err != nil {
			return RemoteFleetResult{}, err
		}
		snapDir, err = os.MkdirTemp("", "remotefleet-*")
		if err != nil {
			return RemoteFleetResult{}, err
		}
		defer os.RemoveAll(snapDir)
		if err := store.Save(filepath.Join(snapDir, "model.ham"), snap); err != nil {
			return RemoteFleetResult{}, err
		}
	}
	for i := range hosts {
		addr, err := freeAddr()
		if err != nil {
			return RemoteFleetResult{}, err
		}
		addrs[i] = addr
		if p.Binary != "" {
			hosts[i] = &procHost{binary: p.Binary, args: []string{
				"-replica", "-partition", fmt.Sprint(i % p.Partitions),
				"-partitions", fmt.Sprint(p.Partitions),
				"-scheme", p.Scheme.String(),
				"-load", filepath.Join(snapDir, "model.ham"),
				"-listen", addr, "-http", "",
			}}
		} else {
			hosts[i] = &inprocHost{bind: addr, mem: f.mem, sc: p.Scheme, p: i % p.Partitions, n: p.Partitions}
		}
	}
	closeHosts := func() {
		for _, h := range hosts {
			h.close()
		}
	}
	for _, h := range hosts {
		if err := h.start(); err != nil {
			closeHosts()
			return RemoteFleetResult{}, err
		}
	}

	// One self-healing transport per replica; the blackholed link's dialer
	// wraps every connection (including redials) with the injector.
	bh := &fault.Blackhole{Link: uint64(p.BlackholeReplica)}
	transports := make([]fleet.ReplicaTransport, p.Replicas)
	remotes := make([]*netserve.RemoteTransport, p.Replicas)
	for i := range transports {
		cfg := netserve.RemoteConfig{
			Addr:         addrs[i],
			DialTimeout:  time.Second,
			WriteTimeout: 250 * time.Millisecond,
			PingInterval: 25 * time.Millisecond,
			PingTimeout:  250 * time.Millisecond,
			BackoffMin:   5 * time.Millisecond,
			BackoffMax:   100 * time.Millisecond,
			Seed:         benchSeed,
			Link:         uint64(i),
		}
		if i == p.BlackholeReplica {
			cfg.Dial = fault.WrapDialer(nil, uint64(i), bh)
		}
		rt := netserve.NewRemoteTransport(cfg)
		transports[i], remotes[i] = rt, rt
	}
	allConnected := func() bool {
		for _, rt := range remotes {
			if !rt.Connected() {
				return false
			}
		}
		return true
	}
	waitUntil := func(cond func() bool, d time.Duration) bool {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
			if cond() {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return cond()
	}
	closeTransports := func() {
		for _, rt := range remotes {
			rt.Close()
		}
	}
	if !waitUntil(allConnected, 30*time.Second) {
		closeTransports()
		closeHosts()
		return RemoteFleetResult{}, errors.New("perf: remote replicas never all connected")
	}

	fl, err := fleet.NewRemote(f.mem, transports, fleet.Config{
		Partitions: p.Partitions,
		Scheme:     p.Scheme,
		Seed:       benchSeed,
		Deadline:   deadline,
		Backoff:    time.Millisecond,
		Cooldown:   16,
	})
	if err != nil {
		closeTransports()
		closeHosts()
		return RemoteFleetResult{}, err
	}

	type outcome struct {
		text     int
		ans      fleet.Answer
		err      error
		lat      time.Duration
		answered bool
	}
	per := p.Requests / p.Clients
	if per < 1 {
		per = 1
	}
	total := int64(p.Clients * per)

	// The fault controller strikes at thirds of overall progress: kill and
	// blackhole after the first, heal both after the second.
	var progress atomic.Int64
	res := RemoteFleetResult{Subprocess: p.Binary != ""}
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		if p.KillReplica < 0 && p.BlackholeReplica < 0 {
			return
		}
		waitUntil(func() bool { return progress.Load() >= total/3 }, time.Minute)
		if p.KillReplica >= 0 {
			hosts[p.KillReplica].kill()
			res.Kills++
		}
		if p.BlackholeReplica >= 0 {
			bh.Arm()
		}
		waitUntil(func() bool { return progress.Load() >= 2*total/3 }, time.Minute)
		if p.BlackholeReplica >= 0 {
			bh.Disarm()
		}
		if p.KillReplica >= 0 {
			if err := hosts[p.KillReplica].start(); err == nil {
				res.Restarts++
			}
		}
	}()

	outs := make([][]outcome, p.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < p.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make([]outcome, 0, per)
			for i := 0; i < per; i++ {
				ti := (c*per + i) % len(texts)
				t0 := time.Now()
				ans, err := fl.Ask(context.Background(), texts[ti])
				mine = append(mine, outcome{text: ti, ans: ans, err: err, lat: time.Since(t0),
					answered: err == nil || errors.Is(err, serve.ErrNoNGrams)})
				progress.Add(1)
			}
			outs[c] = mine
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	<-ctlDone

	// Let healed links finish reconnecting so the counters are complete.
	if res.Restarts > 0 || p.BlackholeReplica >= 0 {
		waitUntil(allConnected, 10*time.Second)
	}
	st := fl.Stats()
	for _, rs := range fl.ReplicaStats() {
		if rs.ID != p.KillReplica && rs.ID != p.BlackholeReplica {
			res.BadBreakerOpens += rs.Opens
		}
	}

	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_, derr := fl.Drain(dctx)
	cancel()
	closeTransports()
	closeHosts()
	if derr != nil {
		return RemoteFleetResult{}, fmt.Errorf("perf: remote fleet drain: %w", derr)
	}

	// Leak census: goroutines and file descriptors must return to the
	// pre-fleet baseline once everything is torn down.
	waitUntil(func() bool { return runtime.NumGoroutine() <= baseGoroutines }, 5*time.Second)
	if g := runtime.NumGoroutine(); g > baseGoroutines {
		res.Leaked = g - baseGoroutines
	}
	if baseFDs >= 0 {
		waitUntil(func() bool { return openFDs() <= baseFDs }, 5*time.Second)
		if fds := openFDs(); fds > baseFDs {
			res.LeakedFDs = fds - baseFDs
		}
	}

	name := p.Name
	if name == "" {
		name = fmt.Sprintf("remotefleet/r%d-p%d-c%d", p.Replicas, p.Partitions, p.Clients)
	}
	res.Name = name
	res.Replicas, res.Partitions = p.Replicas, p.Partitions
	res.Clients, res.Requests = p.Clients, int(total)
	res.Erasures, res.Retried = st.Erasures, st.Retried
	res.Failovers, res.RemoteErrors, res.Reconnects = st.Failovers, st.RemoteErrors, st.Reconnects

	var lats []time.Duration
	for _, mine := range outs {
		for _, o := range mine {
			lats = append(lats, o.lat)
			if !o.answered {
				continue
			}
			res.Answered++
			if o.err != nil {
				continue
			}
			if !o.ans.Degraded {
				if o.ans.Result.Index != refIdx[o.text] {
					res.Mismatches++
				}
				continue
			}
			res.Degraded++
			// A degraded ByWords answer must carry a coherent d-sampling
			// certificate: partial coverage, a widened margin no larger
			// than the observed one, confidence consistent with it.
			certified := o.ans.CoveredBits > 0 && o.ans.CoveredBits < benchDim &&
				o.ans.WidenedMargin <= o.ans.Margin &&
				o.ans.Confident == (o.ans.WidenedMargin > 0)
			if p.Scheme == fleet.ByClasses {
				certified = o.ans.CoveredClasses > 0 && o.ans.CoveredClasses < benchClasses && !o.ans.Confident
			}
			if !certified {
				res.Uncertified++
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if res.Answered > 0 {
		res.DegradedRate = float64(res.Degraded) / float64(res.Answered)
	}
	res.QPS = float64(len(lats)) / elapsed.Seconds()
	res.P50Us = float64(percentile(lats, 50)) / 1e3
	res.P95Us = float64(percentile(lats, 95)) / 1e3
	res.P99Us = float64(percentile(lats, 99)) / 1e3
	return res, nil
}
