package perf

import (
	"testing"
	"time"
)

// TestPercentileRoundsRank pins the rounded nearest-rank semantics,
// including the exact shapes the old truncating version got wrong.
func TestPercentileRoundsRank(t *testing.T) {
	ladder := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = time.Duration(i+1) * time.Millisecond
		}
		return s
	}
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }

	cases := []struct {
		name   string
		sorted []time.Duration
		p      float64
		want   time.Duration
	}{
		{"empty", nil, 99, 0},
		{"single", ladder(1), 99, ms(1)},
		{"p0", ladder(10), 0, ms(1)},
		{"p100", ladder(10), 100, ms(10)},
		{"p50-odd", ladder(11), 50, ms(6)},
		// 10 samples, p99: rank 0.99*9 = 8.91 → rounds to 9 (the max).
		// The truncating version returned index 8 — the 90th percentile.
		{"p99-ten-samples", ladder(10), 99, ms(10)},
		// 10 samples, p95: rank 8.55 → 9. Truncation also said 8.
		{"p95-ten-samples", ladder(10), 95, ms(10)},
		// 10 samples, p50: rank 4.5 → 5 (round half away from zero).
		{"p50-even", ladder(10), 50, ms(6)},
		// 101 samples: ranks are integral, both methods agree.
		{"p99-exact", ladder(101), 99, ms(100)},
		{"p95-exact", ladder(101), 95, ms(96)},
		// 1000 samples, p999: rank 0.999*999 = 998.001 → 998.
		{"p999-thousand", ladder(1000), 99.9, ms(999)},
		// Out-of-range p clamps instead of panicking.
		{"p-negative", ladder(10), -5, ms(1)},
		{"p-over-100", ladder(10), 120, ms(10)},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(%d samples, %v) = %v, want %v",
				tc.name, len(tc.sorted), tc.p, got, tc.want)
		}
	}
}
