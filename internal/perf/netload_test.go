package perf

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// TestRunNetSmoke drives a short low-rate point over each protocol
// end-to-end: the harness must account for every arrival and measure sane
// latencies without shedding at trivial load.
func TestRunNetSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real sockets")
	}
	points := []NetPoint{
		{Name: "binary/smoke", Protocol: "binary", OfferedQPS: 400, Duration: 400 * time.Millisecond, Conns: 2},
		{Name: "http/smoke", Protocol: "http", OfferedQPS: 200, Duration: 400 * time.Millisecond, Conns: 2},
		{Name: "binary/smoke-bursty-batch", Protocol: "binary", OfferedQPS: 400,
			Duration: 400 * time.Millisecond, Conns: 2, Batch: 4, Bursty: true},
	}
	results, err := RunNet(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(points) {
		t.Fatalf("%d results, want %d", len(results), len(points))
	}
	for _, r := range results {
		if r.Requests == 0 {
			t.Errorf("%s: no requests dispatched", r.Name)
		}
		if r.ErrorRate != 0 {
			t.Errorf("%s: error rate %.3f at trivial load", r.Name, r.ErrorRate)
		}
		if r.ShedRate != 0 {
			t.Errorf("%s: shed rate %.3f at trivial load", r.Name, r.ShedRate)
		}
		if r.QPS <= 0 || r.P50Us <= 0 || r.P999Us < r.P50Us {
			t.Errorf("%s: implausible measurements %+v", r.Name, r)
		}
	}
}

// TestArrivalScheduleShape checks the open-loop schedule: deterministic
// under a fixed seed, correct average rate, monotone, and silent during
// the off-half of bursty cycles.
func TestArrivalScheduleShape(t *testing.T) {
	p := NetPoint{OfferedQPS: 10_000, Duration: time.Second, Batch: 1}.withDefaults()
	mk := func() []time.Duration {
		return arrivalSchedule(p, rand.New(rand.NewPCG(benchSeed, 0x10ad)))
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("schedule length nondeterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs under the same seed", i)
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("arrival %d not monotone", i)
		}
		if a[i] >= p.Duration {
			t.Fatalf("arrival %d past the window", i)
		}
	}
	// Poisson count over 1s at 10k/s: ±5% is ~16 sigma, safe forever.
	if n := len(a); n < 9500 || n > 10500 {
		t.Fatalf("schedule carries %d arrivals, want ~10000", n)
	}

	bp := p
	bp.Bursty = true
	bs := arrivalSchedule(bp, rand.New(rand.NewPCG(benchSeed, 0x10ad)))
	if n := len(bs); n < 9000 || n > 11000 {
		t.Fatalf("bursty schedule carries %d arrivals, want ~10000", n)
	}
	for i, at := range bs {
		phase := math.Mod(at.Seconds(), 0.1)
		// A phase within float epsilon of the cycle boundary is the start of
		// the next on window, not the tail of the off window.
		if phase > 0.0501 && phase < 0.1-1e-9 {
			t.Fatalf("bursty arrival %d at %v lands in the off window (phase %.4f)", i, at, phase)
		}
	}
}
