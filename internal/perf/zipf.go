package perf

import (
	"math"
	"math/rand/v2"
)

// Zipf draws ranks 0..n-1 with the power-law skew of Gray et al.'s
// "Quickly Generating Billion-Record Synthetic Databases" (the shape used
// by YCSB and ddtxn): rank k is drawn with probability proportional to
// 1/(k+1)^theta, via the closed-form inverse-CDF approximation — O(n) zeta
// precompute once, O(1) per draw, no allocation. theta in (0,1); 0.99 is
// the customary "hot head" skew where a handful of ranks absorb most
// draws.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewZipf builds a generator over ranks [0, n). It panics on n == 0 or
// theta outside (0, 1) — both are construction bugs, not load conditions.
func NewZipf(n uint64, theta float64, rng *rand.Rand) *Zipf {
	if n == 0 {
		panic("perf: zipf over zero ranks")
	}
	if theta <= 0 || theta >= 1 {
		panic("perf: zipf theta must be in (0, 1)")
	}
	zetan := zeta(n, theta)
	return &Zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		rng:   rng,
	}
}

// zeta is the generalized harmonic number H_{n,theta}.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next rank; rank 0 is the hottest.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n { // guard the approximation's edge at u → 1
		r = z.n - 1
	}
	return r
}

// PMF returns the exact probability of rank k under this distribution —
// the reference the sampler's head frequencies are tested against.
func (z *Zipf) PMF(k uint64) float64 {
	if k >= z.n {
		return 0
	}
	return 1 / (math.Pow(float64(k+1), z.theta) * z.zetan)
}
