// Package dham implements D-HAM, the paper's digital CMOS hyperdimensional
// associative memory (§III-A): a C×D CAM of XOR comparators feeding C
// population counters and a binary tree of C−1 comparators that selects the
// row with the nearest Hamming distance.
//
// The package has two faces:
//
//   - a functional simulator (Searcher) that classifies exactly as the
//     hardware would — an exact nearest-distance search over the d ≤ D
//     dimensions that structured sampling leaves enabled (§III-A1);
//   - a calibrated cost model (Cost) reproducing the paper's Table I energy
//     and area partitioning and the §IV-C scaling behavior.
package dham

import (
	"fmt"

	"hdam/internal/assoc"
	"hdam/internal/core"
	"hdam/internal/hv"
)

// Config describes one D-HAM design point.
type Config struct {
	// D is the hypervector dimensionality the array is built for.
	D int
	// C is the number of stored classes (rows).
	C int
	// SampledD is the number of dimensions actually compared (d ≤ D).
	// d < D is the structured-sampling approximation: trailing columns are
	// gated off, trading exactly D−d bits of worst-case distance error for
	// energy (§III-A1). Zero means "no sampling" (d = D).
	SampledD int
}

// normalize fills defaults and validates.
func (c Config) normalize() (Config, error) {
	if c.D <= 0 {
		return c, fmt.Errorf("dham: dimension %d", c.D)
	}
	if c.C < 2 {
		return c, fmt.Errorf("dham: need at least 2 classes, got %d", c.C)
	}
	if c.SampledD == 0 {
		c.SampledD = c.D
	}
	if c.SampledD < 1 || c.SampledD > c.D {
		return c, fmt.Errorf("dham: sampled d=%d out of [1,%d]", c.SampledD, c.D)
	}
	return c, nil
}

// ErrorBits returns the worst-case Hamming-distance error the sampling
// configuration admits: D − d ignored comparisons.
func (c Config) ErrorBits() int { return c.D - c.SampledD }

// WithErrorBudget returns the configuration that exploits an allowed
// distance error of e bits: sampling d = D − e dimensions, the way D-HAM
// spends its error budget in Figs. 1/11.
func (c Config) WithErrorBudget(e int) (Config, error) {
	if e < 0 || e >= c.D {
		return c, fmt.Errorf("dham: error budget %d out of [0,%d)", e, c.D)
	}
	c.SampledD = c.D - e
	return c.normalize()
}

// HAM is the D-HAM functional simulator bound to a trained memory.
type HAM struct {
	cfg    Config
	mem    *core.Memory
	search *assoc.Sampled
}

// New builds a D-HAM instance over a trained associative memory. The
// memory's dimensionality must match the configuration.
func New(cfg Config, mem *core.Memory) (*HAM, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if mem.Dim() != cfg.D {
		return nil, fmt.Errorf("dham: memory dim %d, config D=%d", mem.Dim(), cfg.D)
	}
	if mem.Classes() != cfg.C {
		return nil, fmt.Errorf("dham: memory has %d classes, config C=%d", mem.Classes(), cfg.C)
	}
	return &HAM{
		cfg:    cfg,
		mem:    mem,
		search: assoc.NewSampled(mem, hv.PrefixMask(cfg.D, cfg.SampledD)),
	}, nil
}

// Search classifies a query exactly as the digital hardware does: an exact
// popcount over the enabled d dimensions, minimum chosen by a deterministic
// comparator tree (ties → lowest row index).
func (h *HAM) Search(q *hv.Vector) core.Result { return h.search.Search(q) }

// ObservedDistances implements core.RowSearcher: the population-counter
// outputs over the enabled d dimensions, one per row.
func (h *HAM) ObservedDistances(dst []int, q *hv.Vector) []int {
	return h.search.ObservedDistances(dst, q)
}

// SearchMargin implements core.MarginSearcher: the comparator tree's two
// smallest counts, exposed as winner plus margin.
func (h *HAM) SearchMargin(q *hv.Vector, buf *[]int) (core.Result, int) {
	return h.search.SearchMargin(q, buf)
}

// Name implements core.Searcher.
func (h *HAM) Name() string {
	if h.cfg.SampledD == h.cfg.D {
		return fmt.Sprintf("D-HAM D=%d C=%d", h.cfg.D, h.cfg.C)
	}
	return fmt.Sprintf("D-HAM D=%d C=%d d=%d", h.cfg.D, h.cfg.C, h.cfg.SampledD)
}

// Config returns the design point.
func (h *HAM) Config() Config { return h.cfg }

var (
	_ core.Searcher       = (*HAM)(nil)
	_ core.RowSearcher    = (*HAM)(nil)
	_ core.MarginSearcher = (*HAM)(nil)
)
