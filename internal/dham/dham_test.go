package dham

import (
	"math"
	"math/rand/v2"
	"testing"

	"hdam/internal/core"
	"hdam/internal/hv"
)

func testMemory(c, dim int, seed uint64) *core.Memory {
	rng := rand.New(rand.NewPCG(seed, 0))
	cs := make([]*hv.Vector, c)
	ls := make([]string, c)
	for i := range cs {
		cs[i] = hv.Random(dim, rng)
		ls[i] = string(rune('A' + i))
	}
	return core.MustMemory(cs, ls)
}

func TestConfigValidation(t *testing.T) {
	bads := []Config{
		{D: 0, C: 10},
		{D: 100, C: 1},
		{D: 100, C: 10, SampledD: 101},
		{D: 100, C: 10, SampledD: -1},
	}
	for i, cfg := range bads {
		if _, err := cfg.Cost(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	cfg, err := (Config{D: 100, C: 10}).normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SampledD != 100 {
		t.Fatalf("default sampled d = %d", cfg.SampledD)
	}
}

func TestWithErrorBudget(t *testing.T) {
	cfg := Config{D: 10000, C: 21}
	got, err := cfg.WithErrorBudget(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampledD != 9000 || got.ErrorBits() != 1000 {
		t.Fatalf("budget mapping wrong: %+v", got)
	}
	if _, err := cfg.WithErrorBudget(10000); err == nil {
		t.Error("full-dimension error budget accepted")
	}
	if _, err := cfg.WithErrorBudget(-1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestSearchExactWithoutSampling(t *testing.T) {
	mem := testMemory(21, hv.Dim, 1)
	h, err := New(Config{D: hv.Dim, C: 21}, mem)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 42; i++ {
		q := hv.FlipBits(mem.Class(i%21), 2500, rng)
		r := h.Search(q)
		wi, wd := mem.Nearest(q)
		if r.Index != wi || r.Distance != wd {
			t.Fatalf("search (%d,%d) != exact (%d,%d)", r.Index, r.Distance, wi, wd)
		}
	}
}

func TestSearchSampledStillClassifies(t *testing.T) {
	mem := testMemory(21, hv.Dim, 3)
	rng := rand.New(rand.NewPCG(4, 4))
	for _, d := range []int{9000, 7000} {
		h, err := New(Config{D: hv.Dim, C: 21, SampledD: d}, mem)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 42; i++ {
			q := hv.FlipBits(mem.Class(i%21), 2000, rng)
			if r := h.Search(q); r.Index != i%21 {
				t.Fatalf("d=%d: query near %d classified %d", d, i%21, r.Index)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	mem := testMemory(5, 1000, 5)
	if _, err := New(Config{D: 999, C: 5}, mem); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := New(Config{D: 1000, C: 6}, mem); err == nil {
		t.Error("class mismatch accepted")
	}
	if _, err := New(Config{D: 0, C: 5}, mem); err == nil {
		t.Error("invalid config accepted")
	}
	h, err := New(Config{D: 1000, C: 5, SampledD: 700}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() == "" || h.Config().SampledD != 700 {
		t.Error("accessors broken")
	}
}

// --- cost model calibration tests (anchors from the paper) ---

const refD, refC = 10000, 100

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

func TestCostTableIPartitioning(t *testing.T) {
	// Table I, D = 10,000: CAM 4976.9 pJ / 15.2 mm²; counters+comparators
	// 1178.2 pJ / 10.9 mm²; total 6155.2 pJ ("CAM array consumes 81% of the
	// total energy").
	cost := Config{D: refD, C: refC}.MustCost()
	cam, _ := cost.Find("cam")
	cnt, _ := cost.Find("count")
	if relErr(float64(cam.Energy), 4976.9) > 0.05 {
		t.Errorf("CAM energy %v, want ≈ 4976.9 pJ", cam.Energy)
	}
	if relErr(float64(cnt.Energy), 1178.2) > 0.05 {
		t.Errorf("counter energy %v, want ≈ 1178.2 pJ", cnt.Energy)
	}
	if relErr(float64(cost.Energy), 6155.2) > 0.05 {
		t.Errorf("total energy %v, want ≈ 6155.2 pJ", cost.Energy)
	}
	share := float64(cam.Energy) / float64(cost.Energy)
	if share < 0.78 || share < 0 || share > 0.84 {
		t.Errorf("CAM energy share %.3f, want ≈ 0.81", share)
	}
	if relErr(float64(cam.Area), 15.2) > 0.05 {
		t.Errorf("CAM area %v, want ≈ 15.2 mm²", cam.Area)
	}
	if relErr(float64(cnt.Area), 10.9) > 0.08 {
		t.Errorf("counter area %v, want ≈ 10.9 mm²", cnt.Area)
	}
}

func TestCostTableISampledRows(t *testing.T) {
	// Table I rows for d=9,000 and d=7,000 (±10%).
	for _, row := range []struct {
		d          int
		camE, cntE float64
		camA, cntA float64
	}{
		{9000, 4479.2, 1131.1, 13.7, 10.2},
		{7000, 3483.8, 883.6, 10.6, 8.3},
	} {
		cost := Config{D: refD, C: refC, SampledD: row.d}.MustCost()
		cam, _ := cost.Find("cam")
		cnt, _ := cost.Find("count")
		if relErr(float64(cam.Energy), row.camE) > 0.10 {
			t.Errorf("d=%d CAM energy %v, want ≈ %.1f", row.d, cam.Energy, row.camE)
		}
		if relErr(float64(cnt.Energy), row.cntE) > 0.10 {
			t.Errorf("d=%d counter energy %v, want ≈ %.1f", row.d, cnt.Energy, row.cntE)
		}
		if relErr(float64(cam.Area), row.camA) > 0.10 {
			t.Errorf("d=%d CAM area %v, want ≈ %.1f", row.d, cam.Area, row.camA)
		}
		if relErr(float64(cnt.Area), row.cntA) > 0.10 {
			t.Errorf("d=%d counter area %v, want ≈ %.1f", row.d, cnt.Area, row.cntA)
		}
	}
}

func TestCostSamplingSavings(t *testing.T) {
	// §III-A1 text claims 7% (d=9,000) and 22% (d=7,000) energy savings;
	// the paper's own Table I rows imply 9% and 29%. We assert the band
	// spanning both sources (the model lands at Table I's values, since it
	// is calibrated against Table I).
	base := Config{D: refD, C: refC}.MustCost()
	s9 := Config{D: refD, C: refC, SampledD: 9000}.MustCost()
	s7 := Config{D: refD, C: refC, SampledD: 7000}.MustCost()
	save9 := 1 - float64(s9.Energy)/float64(base.Energy)
	save7 := 1 - float64(s7.Energy)/float64(base.Energy)
	if save9 < 0.06 || save9 > 0.10 {
		t.Errorf("d=9000 saving %.3f, want in [0.07, 0.09]", save9)
	}
	if save7 < 0.20 || save7 > 0.30 {
		t.Errorf("d=7000 saving %.3f, want in [0.22, 0.29]", save7)
	}
}

// §IV-C1/§IV-C2 for D-HAM: 20× dimensions → ×8.3 energy, ×2.2 delay;
// 16.6× classes → ×12.6 energy, ×3.5 delay (±15%).
func TestScalingDimension(t *testing.T) {
	lo := Config{D: 512, C: 21}.MustCost()
	hi := Config{D: 10000, C: 21}.MustCost()
	eRatio := float64(hi.Energy) / float64(lo.Energy)
	tRatio := float64(hi.Delay) / float64(lo.Delay)
	if math.Abs(eRatio-8.3)/8.3 > 0.15 {
		t.Errorf("D-scaling energy ratio %.2f, want ≈ 8.3", eRatio)
	}
	if math.Abs(tRatio-2.2)/2.2 > 0.15 {
		t.Errorf("D-scaling delay ratio %.2f, want ≈ 2.2", tRatio)
	}
}

func TestScalingClasses(t *testing.T) {
	lo := Config{D: 10000, C: 6}.MustCost()
	hi := Config{D: 10000, C: 100}.MustCost()
	eRatio := float64(hi.Energy) / float64(lo.Energy)
	tRatio := float64(hi.Delay) / float64(lo.Delay)
	if math.Abs(eRatio-12.6)/12.6 > 0.15 {
		t.Errorf("C-scaling energy ratio %.2f, want ≈ 12.6", eRatio)
	}
	if math.Abs(tRatio-3.5)/3.5 > 0.15 {
		t.Errorf("C-scaling delay ratio %.2f, want ≈ 3.5", tRatio)
	}
}

func TestDelayAnchor(t *testing.T) {
	// §IV-B: the design is synthesized for a 160 ns cycle at the reference
	// configuration.
	cost := Config{D: refD, C: refC}.MustCost()
	if relErr(float64(cost.Delay), 160) > 0.10 {
		t.Errorf("reference delay %v, want ≈ 160 ns", cost.Delay)
	}
}

func TestCounterWidth(t *testing.T) {
	// Paper: 14-bit comparators for D = 10,000.
	if w := counterWidth(10000); w != 14 {
		t.Errorf("width(10000) = %d, want 14", w)
	}
	if w := counterWidth(512); w != 10 {
		t.Errorf("width(512) = %d, want 10", w)
	}
}

func TestCostMonotoneInDimensions(t *testing.T) {
	prev := circuit0()
	for _, d := range []int{512, 1000, 2000, 4000, 10000} {
		cost := Config{D: d, C: 21}.MustCost()
		if float64(cost.Energy) <= prev.e || float64(cost.Delay) <= prev.t || float64(cost.Area) <= prev.a {
			t.Fatalf("cost not monotone at D=%d", d)
		}
		prev = ref{float64(cost.Energy), float64(cost.Delay), float64(cost.Area)}
	}
}

type ref struct{ e, t, a float64 }

func circuit0() ref { return ref{} }
