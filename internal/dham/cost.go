package dham

import (
	"math"

	"hdam/internal/circuit"
)

// Calibrated 45 nm model constants for D-HAM.
//
// The free constants below were solved in closed form against four paper
// anchors (the derivation is reproduced in EXPERIMENTS.md):
//
//	(a) Table I, CAM-array line at C=100, D=d=10,000:  ≈ 4,976.9 pJ
//	(b) Table I, counters+comparators line:            ≈ 1,178.2 pJ
//	(c) §IV-C1: scaling D 512→10,000 at C=21 scales energy ×8.3
//	(d) §IV-C2: scaling C 6→100 at D=10,000 scales energy ×12.6
//
// The sub-linear scaling in (c)/(d) implies per-row and per-bitline fixed
// costs (row drivers, query-broadcast buffers) alongside the per-cell
// energy; solving (a)–(d) gives the values here.
const (
	// eXOR is the effective energy of one CAM cell comparison (storage read
	// + XOR switching at ~25% activity), pJ.
	eXOR = 4.4646e-3
	// eRow is the per-row fixed energy per query (row driver, clocking), pJ.
	eRow = 3.8644
	// eBitline is the per-bitline fixed energy per query (query broadcast
	// buffer), pJ.
	eBitline = 0.012684
	// eFA is the energy of one full-adder equivalent in the population
	// counter tree, per counted bit, pJ.
	eFA = 1.0809e-3
	// eReg is the per-flip-flop energy of the counter result register, pJ.
	eReg = 0.02
	// eCmpBit is the per-bit energy of one comparator in the minimum-
	// selection tree, pJ.
	eCmpBit = 0.05
)

// Delay constants (ns), solved against:
//
//	(e) §IV-C1: D 512→10,000 at C=21 scales delay ×2.2
//	(f) §IV-C2: C 6→100 at D=10,000 scales delay ×3.5
//	(g) §IV-B: the synthesized design's 160 ns cycle at C=100, D=10,000
//
// The sqrt(C·D) term is array-diagonal interconnect; log terms are the
// counter and comparator tree depths.
const (
	tFixed  = 1.68
	tCntLog = 0.084 // per log2(d) counter-tree level
	tCmpLog = 5.03  // per log2(C) comparator-tree level
	tWire   = 0.124 // per sqrt(C·d) interconnect unit
)

// Area constants (mm²), from Table I at C=100, D=10,000: CAM 15.2 mm²
// (linear in C·d, matching the sampled rows of Table I exactly), counters
// 7.0 mm² variable + 3.9 mm² comparator tree.
const (
	aCell   = 15.2e-6  // CAM cell incl. wiring, mm²
	aFA     = 7.0e-6   // counter full-adder per counted bit, mm²
	aCmpBit = 2.813e-3 // comparator tree per bit, mm²
)

// counterWidth returns the counter/comparator bit width for d dimensions:
// enough bits to hold a distance of d.
func counterWidth(d int) int {
	return int(math.Ceil(math.Log2(float64(d + 1))))
}

// Cost evaluates the calibrated D-HAM cost model at this design point.
// Breakdown components follow Table I: "cam" (CAM array incl. drivers and
// query broadcast) and "count" (counters and comparators).
func (c Config) Cost() (circuit.Cost, error) {
	c, err := c.normalize()
	if err != nil {
		return circuit.Cost{}, err
	}
	d := float64(c.SampledD)
	C := float64(c.C)
	w := float64(counterWidth(c.SampledD))

	var cost circuit.Cost
	cost.Add(circuit.Component{
		Name:   "cam",
		Energy: circuit.Energy(C*d*eXOR + C*eRow + d*eBitline),
		Delay:  circuit.Delay(tFixed + tWire*math.Sqrt(C*d)),
		Area:   circuit.Area(C * d * aCell),
	})
	cost.Add(circuit.Component{
		Name:   "count",
		Energy: circuit.Energy(C*d*eFA + C*w*eReg + (C-1)*w*eCmpBit),
		Delay:  circuit.Delay(tCntLog*math.Log2(d) + tCmpLog*math.Log2(C)),
		Area:   circuit.Area(C*d*aFA + (C-1)*w*aCmpBit),
	})
	return cost, nil
}

// MustCost is Cost for design points known valid.
func (c Config) MustCost() circuit.Cost {
	cost, err := c.Cost()
	if err != nil {
		panic(err)
	}
	return cost
}

// StandbyPower estimates the idle power of the design: every CMOS CAM cell
// and counter gate leaks continuously (§III-A2's "large idle power" of
// CMOS CAMs). D-HAM cannot power-gate its storage — the learned
// hypervectors live in volatile cells.
func (c Config) StandbyPower() (circuit.StandbyBreakdown, error) {
	c, err := c.normalize()
	if err != nil {
		return circuit.StandbyBreakdown{}, err
	}
	cells := float64(c.C) * float64(c.D)
	return circuit.StandbyBreakdown{
		Array:      circuit.Power(cells * circuit.LeakPerCMOSCell),
		Peripheral: circuit.Power(cells * circuit.LeakPerDigitalGate),
	}, nil
}
