package dham

import (
	"math"
	"math/rand/v2"
	"testing"

	"hdam/internal/hv"
)

func TestDatapathMatchesFunctionalSearch(t *testing.T) {
	mem := testMemory(12, 2000, 70)
	for _, d := range []int{2000, 1500} {
		dp, err := NewDatapath(Config{D: 2000, C: 12, SampledD: d}, mem)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := New(Config{D: 2000, C: 12, SampledD: d}, mem)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(71, 71))
		for i := 0; i < 30; i++ {
			q := hv.FlipBits(mem.Class(i%12), 400, rng)
			if dp.Search(q) != fast.Search(q) {
				t.Fatalf("d=%d: datapath disagrees with functional search", d)
			}
		}
	}
}

func TestDatapathMeasuresTableIIActivity(t *testing.T) {
	// Table II's D-HAM column: 25% switching activity on the XOR outputs,
	// measured here over an i.i.d. random query stream.
	mem := testMemory(10, hv.Dim, 72)
	dp, err := NewDatapath(Config{D: hv.Dim, C: 10}, mem)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(73, 73))
	for i := 0; i < 60; i++ {
		dp.Search(hv.Random(hv.Dim, rng))
	}
	// Discard the cold-start bias (first query toggles from all-zero), then
	// measure steady state.
	dp.ResetStats()
	for i := 0; i < 200; i++ {
		dp.Search(hv.Random(hv.Dim, rng))
	}
	act := dp.Stats().XORActivity()
	if math.Abs(act-0.25) > 0.005 {
		t.Fatalf("measured XOR activity %.4f, want 0.25 (Table II)", act)
	}
}

func TestDatapathSamplingGatesWork(t *testing.T) {
	mem := testMemory(4, 1000, 74)
	dp, err := NewDatapath(Config{D: 1000, C: 4, SampledD: 700}, mem)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(75, 75))
	const n = 20
	for i := 0; i < n; i++ {
		dp.Search(hv.Random(1000, rng))
	}
	s := dp.Stats()
	if s.Searches != n {
		t.Fatalf("searches %d", s.Searches)
	}
	// Exactly C·d gate evaluations per query.
	if want := int64(n * 4 * 700); s.XOREvaluations != want {
		t.Fatalf("evaluations %d, want %d", s.XOREvaluations, want)
	}
	if want := int64(n * 3); s.ComparatorOps != want {
		t.Fatalf("comparator ops %d, want %d", s.ComparatorOps, want)
	}
}

func TestDatapathCounterTogglesNonzero(t *testing.T) {
	mem := testMemory(3, 512, 76)
	dp, err := NewDatapath(Config{D: 512, C: 3}, mem)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(77, 77))
	for i := 0; i < 10; i++ {
		dp.Search(hv.Random(512, rng))
	}
	if dp.Stats().CounterBitToggles == 0 {
		t.Fatal("counter registers never toggled across random queries")
	}
}

func TestDatapathValidation(t *testing.T) {
	mem := testMemory(3, 512, 78)
	if _, err := NewDatapath(Config{D: 500, C: 3}, mem); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := NewDatapath(Config{D: 512, C: 4}, mem); err == nil {
		t.Error("class mismatch accepted")
	}
	dp, err := NewDatapath(Config{D: 512, C: 3}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Name() == "" {
		t.Error("empty name")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on query dim mismatch")
			}
		}()
		dp.Search(hv.New(100))
	}()
	if (DatapathStats{}).XORActivity() != 0 {
		t.Error("empty stats activity not zero")
	}
}
