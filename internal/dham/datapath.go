package dham

import (
	"fmt"
	"math/bits"

	"hdam/internal/core"
	"hdam/internal/hv"
)

// Datapath is the bit-true structural D-HAM simulator. Where HAM answers
// queries through the sampled-distance shortcut, Datapath walks the actual
// digital array of Fig. 2 cycle by cycle: it evaluates every XOR gate,
// remembers each gate's previous output and counts 0→1 toggles — the
// switching events the energy model charges for — then runs the population
// counters and the comparator tree.
//
// Its purpose is validation by measurement: the 25% XOR switching activity
// Table II asserts for D-HAM, and the CAM array's dominance of the
// switched-capacitance budget behind Table I's 81% energy share, are
// *measured* here over real query streams instead of assumed.
type Datapath struct {
	cfg Config
	mem *core.Memory

	// prevXOR[r] holds the previous query's XOR outputs for row r, packed.
	prevXOR [][]uint64
	// prevCount[r] is the previous counter value of row r.
	prevCount []int
	// mask selects the sampled d columns.
	mask *hv.Mask

	stats DatapathStats
}

// DatapathStats accumulates switching-event counts over the queries a
// Datapath has processed.
type DatapathStats struct {
	// Searches is the number of queries processed.
	Searches int
	// XOREvaluations is the number of XOR gate evaluations (C·d per query).
	XOREvaluations int64
	// XORToggles counts 0→1 transitions on XOR outputs between consecutive
	// queries — the switching activity of the CAM array.
	XORToggles int64
	// CounterBitToggles counts bit flips in the counter result registers.
	CounterBitToggles int64
	// ComparatorOps counts comparator evaluations (C−1 per query).
	ComparatorOps int64
}

// XORActivity returns the measured 0→1 switching activity of the XOR
// array: toggles per gate evaluation. For i.i.d. random query streams it
// converges to Table II's 25%.
func (s DatapathStats) XORActivity() float64 {
	if s.XOREvaluations == 0 {
		return 0
	}
	return float64(s.XORToggles) / float64(s.XOREvaluations)
}

// NewDatapath builds the structural simulator for a design point.
func NewDatapath(cfg Config, mem *core.Memory) (*Datapath, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if mem.Dim() != cfg.D {
		return nil, fmt.Errorf("dham: memory dim %d, config D=%d", mem.Dim(), cfg.D)
	}
	if mem.Classes() != cfg.C {
		return nil, fmt.Errorf("dham: memory has %d classes, config C=%d", mem.Classes(), cfg.C)
	}
	words := (cfg.D + 63) / 64
	prev := make([][]uint64, cfg.C)
	for i := range prev {
		prev[i] = make([]uint64, words)
	}
	return &Datapath{
		cfg:       cfg,
		mem:       mem,
		prevXOR:   prev,
		prevCount: make([]int, cfg.C),
		mask:      hv.PrefixMask(cfg.D, cfg.SampledD),
	}, nil
}

// Search processes one query through the array, updating toggle statistics
// and returning the winner chosen by the comparator tree (lowest index on
// ties, as a deterministic tree resolves).
func (d *Datapath) Search(q *hv.Vector) core.Result {
	if q.Dim() != d.cfg.D {
		panic(fmt.Sprintf("dham: query dim %d, array dim %d", q.Dim(), d.cfg.D))
	}
	qw := q.Words()
	best, bestD := 0, d.cfg.D+1
	for r := 0; r < d.cfg.C; r++ {
		cw := d.mem.Class(r).Words()
		prev := d.prevXOR[r]
		count := 0
		for w := range qw {
			// Gate the sampled-out columns off: they neither evaluate nor
			// toggle (their gates are power-gated, §III-A1).
			maskW := d.maskWord(w)
			x := (qw[w] ^ cw[w]) & maskW
			count += bits.OnesCount64(x)
			d.stats.XORToggles += int64(bits.OnesCount64(^prev[w] & x & maskW))
			prev[w] = x
		}
		d.stats.XOREvaluations += int64(d.cfg.SampledD)
		// Counter register toggles: Hamming distance between consecutive
		// counter values' binary codes.
		d.stats.CounterBitToggles += int64(bits.OnesCount(uint(d.prevCount[r]) ^ uint(count)))
		d.prevCount[r] = count
		if count < bestD {
			best, bestD = r, count
		}
	}
	d.stats.ComparatorOps += int64(d.cfg.C - 1)
	d.stats.Searches++
	return core.Result{Index: best, Distance: bestD}
}

// maskWord returns the sampling mask for packed word w.
func (d *Datapath) maskWord(w int) uint64 {
	full := d.cfg.SampledD / 64
	switch {
	case w < full:
		return ^uint64(0)
	case w == full:
		r := d.cfg.SampledD % 64
		if r == 0 {
			return 0
		}
		return (uint64(1) << uint(r)) - 1
	default:
		return 0
	}
}

// Stats returns the accumulated switching statistics.
func (d *Datapath) Stats() DatapathStats { return d.stats }

// ResetStats clears the statistics (the gate states persist, as in
// hardware).
func (d *Datapath) ResetStats() { d.stats = DatapathStats{} }

// Name implements core.Searcher.
func (d *Datapath) Name() string {
	return fmt.Sprintf("D-HAM(datapath) D=%d C=%d d=%d", d.cfg.D, d.cfg.C, d.cfg.SampledD)
}

var _ core.Searcher = (*Datapath)(nil)
