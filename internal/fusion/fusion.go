// Package fusion implements the multimodal sensor-fusion prediction
// application the paper cites as another consumer of hyperdimensional
// associative memory ([8] Räsänen & Kakouros, modeling dependencies in
// parallel data streams; [9] sequence prediction with hyperdimensional
// coding): several parallel categorical sensor streams are fused into
// context hypervectors — channel roles bound to symbol fillers, recent
// history bound through permutation — and the *next* event of a target
// stream is predicted by associative recall: one prototype per possible
// next symbol, bundled from all training contexts that preceded it.
//
// The prediction query is the same nearest-Hamming search the HAM designs
// accelerate; only the contents of the memory differ from the language
// application.
package fusion

import (
	"fmt"
	"math/rand/v2"

	"hdam/internal/core"
	"hdam/internal/encoder"
	"hdam/internal/hv"
	"hdam/internal/itemmem"
)

// Event is one time step across all sensor streams: Symbols[ch] is the
// categorical reading of stream ch.
type Event []int

// Config shapes the fusion predictor.
type Config struct {
	// Dim is the hypervector dimensionality.
	Dim int
	// Streams is the number of parallel sensor streams.
	Streams int
	// Symbols is the alphabet size of every stream.
	Symbols int
	// History is how many past events form the prediction context.
	History int
	// Target is the stream whose next symbol is predicted.
	Target int
	// Seed drives the item memories and tie breaking.
	Seed uint64
}

// validate checks the configuration.
func (c Config) validate() error {
	switch {
	case c.Dim < 64:
		return fmt.Errorf("fusion: dimension %d too small", c.Dim)
	case c.Streams < 1:
		return fmt.Errorf("fusion: %d streams", c.Streams)
	case c.Symbols < 2:
		return fmt.Errorf("fusion: alphabet of %d symbols", c.Symbols)
	case c.History < 1:
		return fmt.Errorf("fusion: history %d", c.History)
	case c.Target < 0 || c.Target >= c.Streams:
		return fmt.Errorf("fusion: target stream %d of %d", c.Target, c.Streams)
	}
	return nil
}

// Predictor learns next-symbol prototypes from multimodal history.
type Predictor struct {
	cfg Config
	rec *encoder.RecordEncoder
	seq *encoder.SequenceEncoder
	im  *itemmem.ItemMemory

	// accs[s] bundles every context that preceded target symbol s.
	accs   []*hv.Accumulator
	counts []int
	mem    *core.Memory // built on Finalize
}

// New creates an untrained predictor.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:    cfg,
		rec:    encoder.NewRecordEncoder(cfg.Dim, cfg.Seed),
		seq:    encoder.NewSequenceEncoder(cfg.Dim, cfg.History),
		im:     itemmem.New(cfg.Dim, cfg.Seed^0xf051014),
		accs:   make([]*hv.Accumulator, cfg.Symbols),
		counts: make([]int, cfg.Symbols),
	}
	for s := range p.accs {
		p.accs[s] = hv.NewAccumulator(cfg.Dim, cfg.Seed+uint64(s))
	}
	return p, nil
}

// symbolVector returns the filler hypervector for (stream, symbol).
func (p *Predictor) symbolVector(stream, symbol int) *hv.Vector {
	// Streams get disjoint symbol spaces in one item memory.
	return p.im.Get(rune(stream*p.cfg.Symbols + symbol))
}

// encodeEvent fuses one event into a record hypervector.
func (p *Predictor) encodeEvent(e Event) *hv.Vector {
	if len(e) != p.cfg.Streams {
		panic(fmt.Sprintf("fusion: event has %d streams, want %d", len(e), p.cfg.Streams))
	}
	fields := make(map[string]*hv.Vector, p.cfg.Streams)
	for ch, sym := range e {
		if sym < 0 || sym >= p.cfg.Symbols {
			panic(fmt.Sprintf("fusion: symbol %d out of [0,%d)", sym, p.cfg.Symbols))
		}
		fields[fmt.Sprintf("s%d", ch)] = p.symbolVector(ch, sym)
	}
	return p.rec.Encode(fields)
}

// EncodeContext fuses the last History events into one context
// hypervector (order-sensitive).
func (p *Predictor) EncodeContext(history []Event) *hv.Vector {
	if len(history) != p.cfg.History {
		panic(fmt.Sprintf("fusion: context of %d events, want %d", len(history), p.cfg.History))
	}
	records := make([]*hv.Vector, len(history))
	for i, e := range history {
		records[i] = p.encodeEvent(e)
	}
	return p.seq.Encode(records)
}

// Observe trains on one transition: the context of History events followed
// by the next event. It must be called before Finalize.
func (p *Predictor) Observe(history []Event, next Event) {
	if p.mem != nil {
		panic("fusion: Observe after Finalize (the paper's memories are write-once per training session)")
	}
	sym := next[p.cfg.Target]
	if sym < 0 || sym >= p.cfg.Symbols {
		panic(fmt.Sprintf("fusion: next symbol %d out of range", sym))
	}
	p.accs[sym].Add(p.EncodeContext(history))
	p.counts[sym]++
}

// ObserveSequence slides over a full multimodal sequence, training on
// every transition. Returns the number of transitions observed.
func (p *Predictor) ObserveSequence(seq []Event) int {
	n := 0
	for t := p.cfg.History; t < len(seq); t++ {
		p.Observe(seq[t-p.cfg.History:t], seq[t])
		n++
	}
	return n
}

// Finalize bundles the per-symbol accumulators into the associative
// memory. Symbols never observed get a label but a random prototype (they
// can never win against observed ones in practice).
func (p *Predictor) Finalize() (*core.Memory, error) {
	if p.mem != nil {
		return p.mem, nil
	}
	classes := make([]*hv.Vector, p.cfg.Symbols)
	labels := make([]string, p.cfg.Symbols)
	rng := rand.New(rand.NewPCG(p.cfg.Seed, 0x0b5e7e))
	for s := range classes {
		labels[s] = fmt.Sprintf("next=%d", s)
		if p.counts[s] == 0 {
			classes[s] = hv.Random(p.cfg.Dim, rng)
			continue
		}
		classes[s] = p.accs[s].Majority()
	}
	mem, err := core.NewMemory(classes, labels)
	if err != nil {
		return nil, err
	}
	p.mem = mem
	return mem, nil
}

// Predict returns the most likely next symbol of the target stream given
// the recent history, using the searcher (any HAM design) over the
// finalized memory.
func (p *Predictor) Predict(s core.Searcher, history []Event) int {
	if p.mem == nil {
		panic("fusion: Predict before Finalize")
	}
	return s.Search(p.EncodeContext(history)).Index
}

// Accuracy evaluates next-symbol prediction over a test sequence.
func (p *Predictor) Accuracy(s core.Searcher, seq []Event) float64 {
	if len(seq) <= p.cfg.History {
		panic("fusion: test sequence shorter than history")
	}
	correct, total := 0, 0
	for t := p.cfg.History; t < len(seq); t++ {
		if p.Predict(s, seq[t-p.cfg.History:t]) == seq[t][p.cfg.Target] {
			correct++
		}
		total++
	}
	return float64(correct) / float64(total)
}

// Memory returns the finalized memory (nil before Finalize).
func (p *Predictor) Memory() *core.Memory { return p.mem }
