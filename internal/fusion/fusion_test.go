package fusion

import (
	"math/rand/v2"
	"testing"

	"hdam/internal/aham"
	"hdam/internal/assoc"
	"hdam/internal/core"
	"hdam/internal/hv"
)

func testConfig() Config {
	return Config{Dim: hv.Dim, Streams: 3, Symbols: 5, History: 2, Target: 0, Seed: 11}
}

func TestConfigValidation(t *testing.T) {
	bads := []Config{
		{Dim: 10, Streams: 3, Symbols: 5, History: 2},
		{Dim: 1000, Streams: 0, Symbols: 5, History: 2},
		{Dim: 1000, Streams: 3, Symbols: 1, History: 2},
		{Dim: 1000, Streams: 3, Symbols: 5, History: 0},
		{Dim: 1000, Streams: 3, Symbols: 5, History: 2, Target: 3},
		{Dim: 1000, Streams: 3, Symbols: 5, History: 2, Target: -1},
	}
	for i, cfg := range bads {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSyntheticProcessShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	sp := DefaultProcess()
	seq := sp.Generate(500, rng)
	if len(seq) != 500 {
		t.Fatalf("%d events", len(seq))
	}
	for t0, e := range seq {
		if len(e) != sp.Streams {
			t.Fatalf("event %d has %d streams", t0, len(e))
		}
		for _, s := range e {
			if s < 0 || s >= sp.Symbols {
				t.Fatalf("symbol %d out of range", s)
			}
		}
	}
	// The self-transition rule leaves a visible signature: with 90% weight,
	// next = (2·cur+1) mod 5 most of the time.
	follows := 0
	for t0 := 1; t0 < len(seq); t0++ {
		if seq[t0][0] == (seq[t0-1][0]*2+1)%sp.Symbols {
			follows++
		}
	}
	if frac := float64(follows) / float64(len(seq)-1); frac < 0.8 {
		t.Fatalf("self rule followed only %.2f of steps", frac)
	}
}

func TestPredictionBeatsChance(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	sp := DefaultProcess()
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	train := sp.Generate(800, rng)
	if n := p.ObserveSequence(train); n != 800-2 {
		t.Fatalf("observed %d transitions", n)
	}
	mem, err := p.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if mem.Classes() != 5 {
		t.Fatalf("%d classes", mem.Classes())
	}
	test := sp.Generate(300, rng)
	acc := p.Accuracy(assoc.NewExact(mem), test)
	// Chance is 0.2; the deterministic rule + leading indicators should
	// push the fused predictor far above it.
	if acc < 0.7 {
		t.Fatalf("fusion prediction accuracy %.3f, want ≥ 0.7 (chance 0.2)", acc)
	}
}

func TestFusionBeatsTargetOnly(t *testing.T) {
	// The modality-fusion claim: a predictor that sees only the target
	// stream must do worse than one fusing the leading auxiliary streams,
	// because (1−SelfWeight) of transitions are unpredictable from the
	// target alone but flagged by the auxiliaries.
	rng := rand.New(rand.NewPCG(3, 3))
	sp := DefaultProcess()
	sp.SelfWeight = 0.5 // half the transitions need the auxiliaries
	train := sp.Generate(1500, rng)
	test := sp.Generate(400, rng)

	fused, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fused.ObserveSequence(train)
	fusedMem, _ := fused.Finalize()
	fusedAcc := fused.Accuracy(assoc.NewExact(fusedMem), test)

	solo, err := New(Config{Dim: hv.Dim, Streams: 1, Symbols: 5, History: 2, Target: 0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	stripped := func(seq []Event) []Event {
		out := make([]Event, len(seq))
		for i, e := range seq {
			out[i] = Event{e[0]}
		}
		return out
	}
	solo.ObserveSequence(stripped(train))
	soloMem, _ := solo.Finalize()
	soloAcc := solo.Accuracy(assoc.NewExact(soloMem), stripped(test))

	if fusedAcc < soloAcc+0.1 {
		t.Fatalf("fused accuracy %.3f not clearly above target-only %.3f", fusedAcc, soloAcc)
	}
}

func TestPredictionThroughAHAM(t *testing.T) {
	// The paper's point: the same hardware serves prediction untouched.
	rng := rand.New(rand.NewPCG(4, 4))
	sp := DefaultProcess()
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.ObserveSequence(sp.Generate(800, rng))
	mem, _ := p.Finalize()
	ah, err := aham.New(aham.Config{D: hv.Dim, C: 5}, mem)
	if err != nil {
		t.Fatal(err)
	}
	test := sp.Generate(200, rng)
	if acc := p.Accuracy(ah, test); acc < 0.65 {
		t.Fatalf("A-HAM prediction accuracy %.3f too low", acc)
	}
}

func TestLifecyclePanicsAndErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	sp := DefaultProcess()
	p, _ := New(testConfig())
	seq := sp.Generate(50, rng)

	func() {
		defer func() {
			if recover() == nil {
				t.Error("Predict before Finalize did not panic")
			}
		}()
		p.Predict(assoc.NewExact(&core.Memory{}), seq[:2])
	}()

	p.ObserveSequence(seq)
	if _, err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Second Finalize is idempotent.
	m1, _ := p.Finalize()
	if m1 != p.Memory() {
		t.Error("Finalize not idempotent")
	}
	// Observe after Finalize violates the write-once rule.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Observe after Finalize did not panic")
			}
		}()
		p.Observe(seq[:2], seq[2])
	}()
	// Wrong-shaped inputs panic.
	for _, f := range []func(){
		func() { p.EncodeContext(seq[:1]) },
		func() { p.EncodeContext([]Event{{1}, {2}}) },
		func() { p.Accuracy(assoc.NewExact(p.Memory()), seq[:2]) },
		func() { DefaultProcess().Generate(1, rng) },
		func() { SyntheticProcess{Streams: 0, Symbols: 2}.Generate(10, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
