package fusion

import (
	"fmt"
	"math/rand/v2"
)

// SyntheticProcess generates correlated multimodal sequences for the
// prediction experiments: the target stream follows a hidden Markov-style
// rule over its own recent history, and the auxiliary streams carry noisy
// *leading indicators* of the target's next move — the structure that
// makes fusing modalities pay off, as in the phone-usage prediction study
// the paper cites [9].
type SyntheticProcess struct {
	// Streams, Symbols mirror Config.
	Streams int
	Symbols int
	// LeadNoise is the probability an auxiliary stream's indicator lies.
	LeadNoise float64
	// SelfWeight is how strongly the target's next symbol follows the
	// deterministic rule vs. uniform noise.
	SelfWeight float64
}

// DefaultProcess returns a 3-stream, 5-symbol process where auxiliary
// streams predict the target one step ahead with 85% fidelity.
func DefaultProcess() SyntheticProcess {
	return SyntheticProcess{Streams: 3, Symbols: 5, LeadNoise: 0.15, SelfWeight: 0.9}
}

// validate checks the process parameters.
func (sp SyntheticProcess) validate() {
	if sp.Streams < 1 || sp.Symbols < 2 {
		panic(fmt.Sprintf("fusion: bad process %+v", sp))
	}
	if sp.LeadNoise < 0 || sp.LeadNoise > 1 || sp.SelfWeight < 0 || sp.SelfWeight > 1 {
		panic(fmt.Sprintf("fusion: bad process noise %+v", sp))
	}
}

// Generate produces a sequence of n events. Stream 0 is the target; its
// next symbol is a deterministic function of its current symbol and the
// auxiliary indicators, corrupted by (1−SelfWeight) uniform noise; the
// auxiliary streams display the *upcoming* target symbol (with LeadNoise
// corruption) plus stream-specific offsets, so a predictor that fuses them
// beats one that watches the target alone.
func (sp SyntheticProcess) Generate(n int, rng *rand.Rand) []Event {
	sp.validate()
	if n < 2 {
		panic(fmt.Sprintf("fusion: sequence of %d events", n))
	}
	seq := make([]Event, n)
	target := rng.IntN(sp.Symbols)
	for t := 0; t < n; t++ {
		// Decide the next target symbol now so auxiliaries can lead it.
		var next int
		if rng.Float64() < sp.SelfWeight {
			next = (target*2 + 1) % sp.Symbols // fixed self-transition rule
		} else {
			next = rng.IntN(sp.Symbols)
		}
		e := make(Event, sp.Streams)
		e[0] = target
		for ch := 1; ch < sp.Streams; ch++ {
			lead := next
			if rng.Float64() < sp.LeadNoise {
				lead = rng.IntN(sp.Symbols)
			}
			e[ch] = (lead + ch) % sp.Symbols // stream-specific encoding offset
		}
		seq[t] = e
		target = next
	}
	return seq
}
