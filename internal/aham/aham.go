// Package aham implements A-HAM, the paper's analog hyperdimensional
// associative memory (§III-D): a memristive TCAM crossbar whose match-line
// discharge *currents* encode row distances, compared by a binary tree of
// loser-takes-all (LTA) blocks that propagates the row with the smallest
// current — the nearest Hamming distance — without ever digitizing the
// distances.
//
// Physics limits what the LTA can resolve: quantization (finite bit
// resolution), ML voltage droop on wide rows, mirror error when a row is
// split into stages, and process/voltage variation (§III-D1/2, Figs. 7 and
// 13). Those effects live in internal/analog; this package binds them to a
// functional searcher — rows closer together than the minimum detectable
// distance are indistinguishable and the winner among them is decided by
// the comparator's random offsets — and to the calibrated cost model.
package aham

import (
	"fmt"
	"math/rand/v2"

	"hdam/internal/analog"
	"hdam/internal/assoc"
	"hdam/internal/core"
	"hdam/internal/hv"
)

// Config describes one A-HAM design point.
type Config struct {
	// D is the hypervector dimensionality.
	D int
	// C is the number of stored classes.
	C int
	// Bits is the LTA comparator resolution; 0 selects the paper's pairing
	// analog.BitsFor(D) (10 bits up to D=1,024, 14 bits at D=10,000).
	// The moderate-accuracy operating point uses 11 bits at D=10,000.
	Bits int
	// Stages is the multistage split; 0 selects analog.StagesFor(D)
	// (≈700 memristive bits per stage, 14 stages at D=10,000). Set 1 to
	// model the single-stage design of Fig. 7's upper curve.
	Stages int
	// Variation is the process/voltage corner (Fig. 13).
	Variation analog.Variation
	// Seed drives the tie-breaking among rows the LTA cannot distinguish.
	Seed uint64
}

// normalize fills defaults and validates.
func (c Config) normalize() (Config, error) {
	if c.D <= 0 {
		return c, fmt.Errorf("aham: dimension %d", c.D)
	}
	if c.C < 2 {
		return c, fmt.Errorf("aham: need at least 2 classes, got %d", c.C)
	}
	if c.Bits == 0 {
		c.Bits = analog.BitsFor(c.D)
	}
	if c.Bits < 1 || c.Bits > 24 {
		return c, fmt.Errorf("aham: LTA bits %d out of [1,24]", c.Bits)
	}
	if c.Stages == 0 {
		c.Stages = analog.StagesFor(c.D)
	}
	if c.Stages < 1 || c.Stages > c.D {
		return c, fmt.Errorf("aham: %d stages for D=%d", c.Stages, c.D)
	}
	return c, nil
}

// LTA returns the analog comparator model of this design point.
func (c Config) LTA() analog.LTA { return analog.LTA{Bits: c.Bits, Stages: c.Stages} }

// MinDetectable returns the minimum Hamming-distance difference the design
// can resolve between two rows (Fig. 7 / Fig. 13).
func (c Config) MinDetectable() (int, error) {
	c, err := c.normalize()
	if err != nil {
		return 0, err
	}
	return c.LTA().MinDetectable(c.D, c.Variation), nil
}

// HAM is the A-HAM functional simulator bound to a trained memory.
type HAM struct {
	cfg       Config
	mem       *core.Memory
	minDetect int
	rng       *rand.Rand
}

// New builds an A-HAM instance over a trained associative memory.
func New(cfg Config, mem *core.Memory) (*HAM, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if mem.Dim() != cfg.D {
		return nil, fmt.Errorf("aham: memory dim %d, config D=%d", mem.Dim(), cfg.D)
	}
	if mem.Classes() != cfg.C {
		return nil, fmt.Errorf("aham: memory has %d classes, config C=%d", mem.Classes(), cfg.C)
	}
	md := cfg.LTA().MinDetectable(cfg.D, cfg.Variation)
	return &HAM{
		cfg:       cfg,
		mem:       mem,
		minDetect: md,
		rng:       rand.New(rand.NewPCG(cfg.Seed, 0x41484141)),
	}, nil
}

// Search classifies a query as the analog hardware does: the LTA tree
// returns the row with the smallest discharge current, but rows whose
// distances differ by less than the minimum detectable distance are a
// toss-up decided by comparator offsets (modeled as a seeded uniform choice
// among the near-tie set).
func (h *HAM) Search(q *hv.Vector) core.Result {
	ds := h.mem.Distances(q)
	win := assoc.QuantizedWinner(ds, h.minDetect, h.rng)
	return core.Result{Index: win, Distance: ds[win]}
}

// ObservedDistances implements core.RowSearcher: the match-line discharge
// currents in Hamming-distance units. A-HAM's resolution limit is a
// property of the LTA comparator tree, not of the currents themselves, so
// the observed row is exact and the near-tie ambiguity appears at winner
// selection (Search, SearchMargin).
func (h *HAM) ObservedDistances(dst []int, q *hv.Vector) []int {
	if cap(dst) < h.cfg.C {
		dst = make([]int, h.cfg.C)
	}
	dst = dst[:h.cfg.C]
	h.mem.DistancesInto(dst, q)
	return dst
}

// SearchMargin implements core.MarginSearcher. The LTA tree can detect —
// but not resolve — a near-tie: when more than one row sits within the
// minimum detectable distance of the smallest current, the winner is a
// comparator-offset toss-up and the reported margin is 0 (the ambiguity
// signal the paper's multistage search escalates on). An unambiguous
// winner reports its true gap to the runner-up, which is ≥ the minimum
// detectable distance by construction.
func (h *HAM) SearchMargin(q *hv.Vector, buf *[]int) (core.Result, int) {
	var local []int
	if buf == nil {
		buf = &local
	}
	*buf = h.ObservedDistances(*buf, q)
	ds := *buf
	win := assoc.QuantizedWinner(ds, h.minDetect, h.rng)
	margin := 0
	if _, _, m := assoc.MarginWinner(ds); m >= h.minDetect {
		margin = m
	}
	return core.Result{Index: win, Distance: ds[win]}, margin
}

// MinDetect returns the resolved minimum detectable distance of this
// instance.
func (h *HAM) MinDetect() int { return h.minDetect }

// Name implements core.Searcher.
func (h *HAM) Name() string {
	return fmt.Sprintf("A-HAM D=%d C=%d bits=%d stages=%d Δ=%d",
		h.cfg.D, h.cfg.C, h.cfg.Bits, h.cfg.Stages, h.minDetect)
}

// Config returns the design point (with defaults resolved).
func (h *HAM) Config() Config { return h.cfg }

var (
	_ core.Searcher       = (*HAM)(nil)
	_ core.RowSearcher    = (*HAM)(nil)
	_ core.MarginSearcher = (*HAM)(nil)
)
