package aham

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"

	"hdam/internal/analog"
	"hdam/internal/core"
	"hdam/internal/hv"
)

// CircuitHAM is the current-domain structural A-HAM simulator: where HAM
// quantizes distances through the closed-form resolution model, CircuitHAM
// instantiates the actual analog datapath of Fig. 6/8 —
//
//   - every row is split into the configured stages; each stage's mismatch
//     count drives a saturating ML current (the stabilizer holds the ML
//     voltage only up to a linearity limit, so current compresses at high
//     mismatch counts);
//   - per-stage current mirrors sum the partial currents into the row
//     current, each mirror carrying a *static* gain error drawn once at
//     construction (process variation is frozen per chip);
//   - a single-elimination tree of C−1 LTA comparators selects the row
//     with the smallest current; each comparator has a static input offset
//     and a finite resolution quantum — differences below the quantum are
//     decided by the offset's sign, not the data.
//
// Because mirror gains and comparator offsets are frozen at construction,
// a CircuitHAM instance is a *chip*: the same query always classifies the
// same way, and variation shows up as disagreement between chips (seeds) —
// exactly how silicon behaves, and the property the Monte-Carlo analysis
// of Fig. 13 samples over.
type CircuitHAM struct {
	cfg Config
	mem *core.Memory

	stageOf    []int       // component index → stage index
	mirrorGain [][]float64 // [row][stage] static mirror gain (≈1)
	cmpOffset  []float64   // per tree comparator, distance units, static
	quantum    float64     // LTA resolution quantum, distance units
	seed       uint64      // chip seed; also salts the droop-noise hash
}

// Structural analog constants.
const (
	// droopNoiseK sets the data-dependent ML-droop error of one stage:
	// when the stabilizer cannot hold the ML voltage, the stage current
	// deviates from linear by an amount that grows with the square of the
	// stage's mismatch count — σ_droop(m) = m²/droopNoiseK distance units.
	// At a single 10,000-cell stage carrying ~4,700 mismatches this is
	// ≈11 bits (3σ ≈ 33), reproducing the closed-form model's finding
	// that a wide stage cannot be rescued by more comparator bits
	// (§III-D1, Fig. 7); at a 715-cell stage it is negligible.
	droopNoiseK = 2.0e6
	// mirrorGainSigma is the 1σ static gain error of a stage-summing
	// current mirror; with ~300 mismatches per 715-cell stage it
	// contributes ≈1 distance bit per stage, matching the closed-form
	// model's mirrorErr (§III-D2).
	mirrorGainSigma = 0.005
)

// NewCircuit builds a chip instance. The seed freezes this chip's mirror
// gains and comparator offsets; build several seeds to sample variation.
func NewCircuit(cfg Config, mem *core.Memory, seed uint64) (*CircuitHAM, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if mem.Dim() != cfg.D {
		return nil, fmt.Errorf("aham: memory dim %d, config D=%d", mem.Dim(), cfg.D)
	}
	if mem.Classes() != cfg.C {
		return nil, fmt.Errorf("aham: memory has %d classes, config C=%d", mem.Classes(), cfg.C)
	}
	rng := rand.New(rand.NewPCG(seed, 0xc1_2c_17))
	stageCells := (cfg.D + cfg.Stages - 1) / cfg.Stages
	h := &CircuitHAM{
		cfg:     cfg,
		mem:     mem,
		stageOf: make([]int, cfg.D),
		quantum: float64(cfg.D) / math.Exp2(float64(cfg.Bits)),
	}
	for i := 0; i < cfg.D; i++ {
		h.stageOf[i] = i / stageCells
	}
	h.mirrorGain = make([][]float64, cfg.C)
	for r := range h.mirrorGain {
		gains := make([]float64, cfg.Stages)
		for s := range gains {
			gains[s] = 1 + rng.NormFloat64()*mirrorGainSigma
		}
		h.mirrorGain[r] = gains
	}
	// Comparator offsets: the variation corner's spread plus the intrinsic
	// device mismatch every comparator has — about half a resolution
	// quantum, which is what makes the quantum the effective floor.
	sigma := analog.LTA{Bits: cfg.Bits, Stages: cfg.Stages}.OffsetSigma(cfg.D, cfg.Variation)
	intrinsic := h.quantum / 2
	h.cmpOffset = make([]float64, cfg.C) // tree of ≤ C−1 comparators; index by slot
	for i := range h.cmpOffset {
		h.cmpOffset[i] = rng.NormFloat64()*sigma + rng.NormFloat64()*intrinsic
	}
	h.seed = seed
	return h, nil
}

// stageMismatches counts per-stage mismatches between q and class c.
func (h *CircuitHAM) stageMismatches(q, c *hv.Vector) []int {
	out := make([]int, h.cfg.Stages)
	qw, cw := q.Words(), c.Words()
	for wi := range qw {
		x := qw[wi] ^ cw[wi]
		for x != 0 {
			b := wi*64 + bits.TrailingZeros64(x)
			if b < h.cfg.D {
				out[h.stageOf[b]]++
			}
			x &= x - 1
		}
	}
	return out
}

// rowCurrent computes the summed, mirror-scaled row current in distance
// units, including the data-dependent droop deviation of each stage. The
// droop noise is a pure function of (chip, row, stage, mismatch count), so
// one chip always reads one pattern the same way.
func (h *CircuitHAM) rowCurrent(row int, stages []int) float64 {
	var u float64
	for s, m := range stages {
		f := float64(m)
		if m > 0 {
			sigma := float64(m) * float64(m) / droopNoiseK
			f += droopNoise(h.seed, uint64(row), uint64(s), uint64(m)) * sigma
		}
		u += h.mirrorGain[row][s] * f
	}
	return u
}

// droopNoise returns a deterministic standard-normal deviate for the
// (chip, row, stage, mismatch) tuple.
func droopNoise(seed, row, stage, m uint64) float64 {
	h := seed ^ row*0x9e3779b97f4a7c15 ^ stage*0xc2b2ae3d27d4eb4f ^ m*0x165667b19e3779f9
	rng := rand.New(rand.NewPCG(h, h^0xdeadbeef))
	return rng.NormFloat64()
}

// compare is one LTA comparator: it returns true when row a's current is
// read as smaller than row b's. Differences below the quantum are resolved
// by the comparator's static offset.
func (h *CircuitHAM) compare(slot int, ua, ub float64) bool {
	diff := ua - ub + h.cmpOffset[slot%len(h.cmpOffset)]
	if math.Abs(diff) < h.quantum {
		// Below the resolution quantum the data is invisible; the offset
		// polarity decides.
		return h.cmpOffset[slot%len(h.cmpOffset)] <= 0
	}
	return diff < 0
}

// Search runs the full analog datapath: currents, mirrors, LTA tournament.
func (h *CircuitHAM) Search(q *hv.Vector) core.Result {
	currents := make([]float64, h.cfg.C)
	for r := 0; r < h.cfg.C; r++ {
		currents[r] = h.rowCurrent(r, h.stageMismatches(q, h.mem.Class(r)))
	}
	// Single-elimination tournament, fixed bracket, one comparator slot
	// per match (slot index = position in the flattened tree).
	contenders := make([]int, h.cfg.C)
	for i := range contenders {
		contenders[i] = i
	}
	slot := 0
	for len(contenders) > 1 {
		next := contenders[:0]
		for i := 0; i+1 < len(contenders); i += 2 {
			a, b := contenders[i], contenders[i+1]
			if h.compare(slot, currents[a], currents[b]) {
				next = append(next, a)
			} else {
				next = append(next, b)
			}
			slot++
		}
		if len(contenders)%2 == 1 {
			next = append(next, contenders[len(contenders)-1])
		}
		contenders = next
	}
	win := contenders[0]
	return core.Result{Index: win, Distance: hv.Hamming(q, h.mem.Class(win))}
}

// Name implements core.Searcher.
func (h *CircuitHAM) Name() string {
	return fmt.Sprintf("A-HAM(circuit) D=%d C=%d bits=%d stages=%d",
		h.cfg.D, h.cfg.C, h.cfg.Bits, h.cfg.Stages)
}

var _ core.Searcher = (*CircuitHAM)(nil)

// Quantum exposes the comparator resolution quantum (distance units).
func (h *CircuitHAM) Quantum() float64 { return h.quantum }
