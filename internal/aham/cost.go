package aham

import (
	"math"

	"hdam/internal/circuit"
)

// Calibrated 45 nm model constants for A-HAM.
//
// Anchors (derivation in EXPERIMENTS.md):
//
//	(a) §IV-C1: D 512→10,000 at C=21 scales energy ×1.9, delay ×1.7 —
//	    A-HAM "tunes its accuracy by solely changing the resolution of the
//	    LTA blocks", so dimensionality barely moves its cost;
//	(b) §IV-C2: C 6→100 at D=10,000 scales energy ×15.9 (the LTA tree is
//	    linear in C), delay ×4.4 (input buffers and tree depth);
//	(c) §IV-D (Fig. 11): EDP ≈746× (max accuracy, 14-bit LTA) and ≈1347×
//	    (moderate, 11-bit) below D-HAM;
//	(d) §IV-E (Fig. 12): total area ≈3× below D-HAM, LTA blocks ≈69% of it.
//
// LTA energy grows exponentially with resolution — eLTA ∝ 2^(bits/3) —
// which simultaneously satisfies (a) (10→14 bits ≈ ×2.5 over a 20× D
// range) and gives the moderate 11-bit point half the 14-bit LTA energy.
const (
	// kLTA scales the per-LTA-block energy: eLTA(bits) = kLTA·2^(bits/3), pJ.
	kLTA = 0.08351
	// eRowA is the per-row energy per query (ML stabilizer + sense block +
	// input buffer share), pJ.
	eRowA = 0.841
	// eSenseA is the per-cell discharge/sense energy per query, pJ; high
	// R_ON memristors keep it three orders below D-HAM's XOR cells.
	eSenseA = 5.87e-4
)

// Delay constants (ns). The C term is the input buffers plus LTA tree and
// shrinks with LTA resolution (lower bit width → faster settle, §IV-D);
// the sqrt(D) term is ML settling across the row.
const (
	tBufA    = 0.03288  // per class, at full 14-bit resolution
	tSenseA  = 0.007465 // per sqrt(D)
	bitsRef  = 14.0     // resolution at which tBufA is calibrated
	bitsFrac = 0.6      // fraction of the C term that scales with bits
)

// Area constants (mm²): Fig. 12 at C=100, D=10,000 — total ≈8.7 mm², LTA
// 69% (§IV-E); the crossbar packs ≈700 memristive bits per analog stage,
// giving cell density well above D-HAM's CMOS CAM.
const (
	aLTABit = 4.329e-3 // per LTA block per resolution bit
	aCellA  = 2.7e-6   // memristive TCAM cell
)

// ltaEnergy returns the per-block LTA energy at a resolution.
func ltaEnergy(bits int) float64 {
	return kLTA * math.Exp2(float64(bits)/3)
}

// Cost evaluates the calibrated A-HAM cost model. Breakdown components:
// "lta" (the loser-takes-all comparator tree — the dominant consumer at
// scale, §III-D3), "crossbar" (TCAM cells, sense blocks, ML stabilizers).
func (c Config) Cost() (circuit.Cost, error) {
	c, err := c.normalize()
	if err != nil {
		return circuit.Cost{}, err
	}
	C := float64(c.C)
	D := float64(c.D)
	bits := float64(c.Bits)

	bufScale := (1 - bitsFrac) + bitsFrac*bits/bitsRef

	var cost circuit.Cost
	cost.Add(circuit.Component{
		Name:   "lta",
		Energy: circuit.Energy((C - 1) * ltaEnergy(c.Bits)),
		Delay:  circuit.Delay(tBufA * C * bufScale),
		Area:   circuit.Area((C - 1) * bits * aLTABit),
	})
	cost.Add(circuit.Component{
		Name:   "crossbar",
		Energy: circuit.Energy(C*eRowA + D*eSenseA),
		Delay:  circuit.Delay(tSenseA * math.Sqrt(D)),
		Area:   circuit.Area(C * D * aCellA),
	})
	return cost, nil
}

// MustCost is Cost for design points known valid.
func (c Config) MustCost() circuit.Cost {
	cost, err := c.Cost()
	if err != nil {
		panic(err)
	}
	return cost
}

// StandbyPower estimates the idle power: the memristive TCAM is
// nonvolatile and the analog LTA/sense blocks are power-gated between
// searches, leaving only a small control-logic trickle — the deepest
// standby of the three designs.
func (c Config) StandbyPower() (circuit.StandbyBreakdown, error) {
	c, err := c.normalize()
	if err != nil {
		return circuit.StandbyBreakdown{}, err
	}
	cells := float64(c.C) * float64(c.D)
	// ~10 always-on control gates per row (wake/row-select logic).
	ctrlGates := 10 * float64(c.C)
	return circuit.StandbyBreakdown{
		Array:      circuit.Power(cells * circuit.LeakPerNVMCell),
		Peripheral: circuit.Power(ctrlGates * circuit.LeakPerDigitalGate),
	}, nil
}
