package aham

import (
	"math"
	"math/rand/v2"
	"testing"

	"hdam/internal/analog"
	"hdam/internal/core"
	"hdam/internal/dham"
	"hdam/internal/hv"
)

func testMemory(c, dim int, seed uint64) *core.Memory {
	rng := rand.New(rand.NewPCG(seed, 0))
	cs := make([]*hv.Vector, c)
	ls := make([]string, c)
	for i := range cs {
		cs[i] = hv.Random(dim, rng)
		ls[i] = string(rune('A' + i))
	}
	return core.MustMemory(cs, ls)
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := (Config{D: 10000, C: 21}).normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Bits != 14 || cfg.Stages != 14 {
		t.Fatalf("defaults at D=10,000: bits=%d stages=%d, want 14/14", cfg.Bits, cfg.Stages)
	}
	cfg, _ = (Config{D: 512, C: 21}).normalize()
	if cfg.Bits != 10 || cfg.Stages != 1 {
		t.Fatalf("defaults at D=512: bits=%d stages=%d, want 10/1", cfg.Bits, cfg.Stages)
	}
}

func TestConfigValidation(t *testing.T) {
	bads := []Config{
		{D: 0, C: 5},
		{D: 100, C: 1},
		{D: 100, C: 5, Bits: 25},
		{D: 100, C: 5, Bits: -1},
		{D: 100, C: 5, Stages: 101},
	}
	for i, cfg := range bads {
		if _, err := cfg.Cost(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMinDetectable(t *testing.T) {
	md, err := (Config{D: 10000, C: 21}).MinDetectable()
	if err != nil {
		t.Fatal(err)
	}
	if md < 13 || md > 16 {
		t.Fatalf("default Δ at D=10,000 is %d, want ≈14", md)
	}
	single, _ := (Config{D: 10000, C: 21, Bits: 10, Stages: 1}).MinDetectable()
	if single < 38 || single > 48 {
		t.Fatalf("single-stage Δ %d, want ≈43", single)
	}
}

func TestSearchClassifiesWithWideMargins(t *testing.T) {
	// Random class vectors are thousands of bits apart, far above Δ=14, so
	// A-HAM must classify exactly like the ideal search.
	mem := testMemory(21, hv.Dim, 1)
	h, err := New(Config{D: hv.Dim, C: 21}, mem)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 42; i++ {
		q := hv.FlipBits(mem.Class(i%21), 2500, rng)
		if r := h.Search(q); r.Index != i%21 {
			t.Fatalf("query near %d classified %d", i%21, r.Index)
		}
	}
}

func TestSearchConfusesWithinResolution(t *testing.T) {
	// Two classes closer than Δ must sometimes swap.
	dim := 10000
	rng := rand.New(rand.NewPCG(3, 3))
	c0 := hv.Random(dim, rng)
	c1 := hv.FlipBits(c0, 5, rng) // separation 5 < Δ=14
	far := hv.Random(dim, rng)
	mem := core.MustMemory([]*hv.Vector{c0, c1, far}, []string{"a", "b", "c"})
	h, err := New(Config{D: dim, C: 3}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if h.MinDetect() < 10 {
		t.Fatalf("Δ = %d unexpectedly small", h.MinDetect())
	}
	q := hv.FlipBits(c0, 2, rng)
	saw := map[int]bool{}
	for i := 0; i < 300; i++ {
		saw[h.Search(q).Index] = true
	}
	if !saw[0] || !saw[1] {
		t.Fatalf("LTA never confused rows separated below Δ: %v", saw)
	}
	if saw[2] {
		t.Fatal("LTA confused a far row")
	}
}

func TestVariationDegradesResolution(t *testing.T) {
	base, _ := (Config{D: 10000, C: 21}).MinDetectable()
	worst, _ := (Config{D: 10000, C: 21,
		Variation: analog.Variation{Process3Sigma: 0.35, SupplyDrop: 0.10}}).MinDetectable()
	if worst <= base {
		t.Fatalf("worst-corner Δ %d not above nominal %d", worst, base)
	}
}

func TestNewValidation(t *testing.T) {
	mem := testMemory(5, 1000, 4)
	if _, err := New(Config{D: 999, C: 5}, mem); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := New(Config{D: 1000, C: 4}, mem); err == nil {
		t.Error("class mismatch accepted")
	}
	h, err := New(Config{D: 1000, C: 5}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() == "" || h.Config().Bits == 0 {
		t.Error("accessors broken")
	}
}

// --- cost model calibration ---

func TestScalingDimension(t *testing.T) {
	// §IV-C1 for A-HAM: 20× dimensions → ×1.9 energy, ×1.7 delay (±20%).
	lo := Config{D: 512, C: 21}.MustCost()
	hi := Config{D: 10000, C: 21}.MustCost()
	if r := float64(hi.Energy) / float64(lo.Energy); math.Abs(r-1.9)/1.9 > 0.20 {
		t.Errorf("D-scaling energy ratio %.2f, want ≈ 1.9", r)
	}
	if r := float64(hi.Delay) / float64(lo.Delay); math.Abs(r-1.7)/1.7 > 0.20 {
		t.Errorf("D-scaling delay ratio %.2f, want ≈ 1.7", r)
	}
}

func TestScalingClasses(t *testing.T) {
	// §IV-C2 for A-HAM: 16.6× classes → ×15.9 energy, ×4.4 delay (±15%).
	lo := Config{D: 10000, C: 6}.MustCost()
	hi := Config{D: 10000, C: 100}.MustCost()
	if r := float64(hi.Energy) / float64(lo.Energy); math.Abs(r-15.9)/15.9 > 0.15 {
		t.Errorf("C-scaling energy ratio %.2f, want ≈ 15.9", r)
	}
	if r := float64(hi.Delay) / float64(lo.Delay); math.Abs(r-4.4)/4.4 > 0.15 {
		t.Errorf("C-scaling delay ratio %.2f, want ≈ 4.4", r)
	}
}

func TestEDPRatiosVersusDHAM(t *testing.T) {
	// Fig. 11 headline: A-HAM EDP ≈746× (max accuracy) and ≈1347×
	// (moderate) below D-HAM at D=10,000, C=100. The model reproduces the
	// orders of magnitude; we assert within a factor 1.6 band.
	dMax := dham.Config{D: 10000, C: 100, SampledD: 9000}.MustCost()
	dMod := dham.Config{D: 10000, C: 100, SampledD: 7000}.MustCost()
	aMax := Config{D: 10000, C: 100, Bits: 14}.MustCost()
	aMod := Config{D: 10000, C: 100, Bits: 11}.MustCost()

	maxRatio := float64(dMax.EDP()) / float64(aMax.EDP())
	modRatio := float64(dMod.EDP()) / float64(aMod.EDP())
	if maxRatio < 746/1.6 || maxRatio > 746*1.6 {
		t.Errorf("max-accuracy EDP ratio %.0f, want ≈ 746", maxRatio)
	}
	if modRatio < 1347/1.8 || modRatio > 1347*1.8 {
		t.Errorf("moderate EDP ratio %.0f, want ≈ 1347", modRatio)
	}
	if modRatio <= maxRatio {
		t.Errorf("moderate ratio %.0f not above max-accuracy ratio %.0f", modRatio, maxRatio)
	}
	gain := float64(aMax.EDP()) / float64(aMod.EDP())
	if gain < 1.4 || gain > 2.6 {
		t.Errorf("A-HAM max→moderate EDP gain %.2f, want ≈ 2.4", gain)
	}
}

func TestLTADominatesEnergyAndArea(t *testing.T) {
	// §III-D3: "LTA blocks are the main source of A-HAM energy consumption
	// in large sizes"; §IV-E: LTA ≈69% of total area.
	cost := Config{D: 10000, C: 100}.MustCost()
	lta, _ := cost.Find("lta")
	if share := float64(lta.Energy) / float64(cost.Energy); share < 0.55 {
		t.Errorf("LTA energy share %.2f, want dominant (≈0.70)", share)
	}
	if share := float64(lta.Area) / float64(cost.Area); math.Abs(share-0.69) > 0.08 {
		t.Errorf("LTA area share %.2f, want ≈ 0.69", share)
	}
}

func TestAreaVersusDHAM(t *testing.T) {
	// Fig. 12: A-HAM ≈3× smaller than D-HAM.
	dA := dham.Config{D: 10000, C: 100}.MustCost().Area
	aA := Config{D: 10000, C: 100}.MustCost().Area
	ratio := float64(dA) / float64(aA)
	if math.Abs(ratio-3.0) > 0.5 {
		t.Errorf("area ratio %.2f, want ≈ 3", ratio)
	}
}

func TestModerateBitsCheaper(t *testing.T) {
	max := Config{D: 10000, C: 100, Bits: 14}.MustCost()
	mod := Config{D: 10000, C: 100, Bits: 11}.MustCost()
	if mod.Energy >= max.Energy || mod.Delay >= max.Delay {
		t.Fatal("reducing LTA bits must reduce both energy and delay")
	}
}
