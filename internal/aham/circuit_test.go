package aham

import (
	"math/rand/v2"
	"testing"

	"hdam/internal/analog"
	"hdam/internal/core"
	"hdam/internal/hv"
)

func TestCircuitClassifiesWideMargins(t *testing.T) {
	mem := testMemory(21, hv.Dim, 60)
	h, err := NewCircuit(Config{D: hv.Dim, C: 21}, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(61, 61))
	for i := 0; i < 42; i++ {
		q := hv.FlipBits(mem.Class(i%21), 2500, rng)
		if r := h.Search(q); r.Index != i%21 {
			t.Fatalf("circuit path misclassified query near %d as %d", i%21, r.Index)
		}
	}
}

func TestCircuitDeterministicPerChip(t *testing.T) {
	mem := testMemory(8, 2000, 62)
	h, err := NewCircuit(Config{D: 2000, C: 8}, mem, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(63, 63))
	q := hv.FlipBits(mem.Class(3), 500, rng)
	first := h.Search(q)
	for i := 0; i < 10; i++ {
		if h.Search(q) != first {
			t.Fatal("same chip classified the same query differently")
		}
	}
}

// operatingPair builds a memory whose two classes sit at realistic
// operating distances from the query — d(q, c0) = base, d(q, c1) =
// base+sep — the regime the resolution model describes (bundled queries
// are ~D/2-ish from every prototype; classification rides on differential
// margins while the analog errors scale with the absolute currents).
func operatingPair(t *testing.T, dim, base, sep int, rng *rand.Rand) (*core.Memory, *hv.Vector) {
	t.Helper()
	q := hv.Random(dim, rng)
	c0 := hv.FlipBits(q, base, rng)
	c1 := hv.FlipBits(q, base+sep, rng)
	return core.MustMemory([]*hv.Vector{c0, c1}, []string{"a", "b"}), q
}

func TestCircuitNearTiesVaryAcrossChips(t *testing.T) {
	// Two classes separated by less than the resolution: different chip
	// instances (different static mirror gains and offsets) must disagree
	// about the winner, while each chip individually is deterministic —
	// silicon behavior.
	dim := 10000
	rng := rand.New(rand.NewPCG(64, 64))
	mem, q := operatingPair(t, dim, 4000, 3, rng)

	winners := map[int]bool{}
	for seed := uint64(0); seed < 40; seed++ {
		h, err := NewCircuit(Config{D: dim, C: 2}, mem, seed)
		if err != nil {
			t.Fatal(err)
		}
		winners[h.Search(q).Index] = true
	}
	if !winners[0] || !winners[1] {
		t.Fatalf("near-tie winners identical across 40 chips: %v", winners)
	}
}

func TestCircuitEmpiricalResolutionMatchesModel(t *testing.T) {
	// Measure the separation at which chips start resolving reliably and
	// compare against the closed-form minimum detectable distance.
	dim := 10000
	cfg := Config{D: dim, C: 2}
	ncfg, _ := cfg.normalize()
	model := analog.LTA{Bits: ncfg.Bits, Stages: ncfg.Stages}.MinDetectable(dim, analog.Variation{})

	rng := rand.New(rand.NewPCG(65, 65))
	resolves := func(sep int) float64 {
		correct := 0
		const chips = 40
		for seed := uint64(0); seed < chips; seed++ {
			mem, q := operatingPair(t, dim, 4000, sep, rng)
			h, err := NewCircuit(cfg, mem, seed)
			if err != nil {
				t.Fatal(err)
			}
			if h.Search(q).Index == 0 {
				correct++
			}
		}
		return float64(correct) / chips
	}
	// Well above the model resolution: reliable.
	if p := resolves(6 * model); p < 0.95 {
		t.Errorf("chips resolve separation %d only %.2f of the time", 6*model, p)
	}
	// Well below: unreliable (mirror errors and offsets decide).
	if p := resolves(model / 4); p > 0.9 {
		t.Errorf("chips resolve separation %d too reliably (%.2f) for a Δ=%d design", model/4, p, model)
	}
}

func TestCircuitMultistageBeatsSingleStageAtScale(t *testing.T) {
	// The Fig. 7 story, structurally: at D=10,000 with a 10-bit LTA the
	// single-stage chip's quantum (≈10 bits of distance... but with droop
	// compression it confuses separations the 14-stage chip resolves).
	dim := 10000
	const sep = 15 // between the multistage (≈14) and single-stage (≈43) resolutions
	rng := rand.New(rand.NewPCG(66, 66))
	resolve := func(stages, bitsN int) float64 {
		correct := 0
		const chips = 80
		for seed := uint64(100); seed < 100+chips; seed++ {
			mem, q := operatingPair(t, dim, 4000, sep, rng)
			h, err := NewCircuit(Config{D: dim, C: 2, Stages: stages, Bits: bitsN}, mem, seed)
			if err != nil {
				t.Fatal(err)
			}
			if h.Search(q).Index == 0 {
				correct++
			}
		}
		return float64(correct) / chips
	}
	single := resolve(1, 10)
	multi := resolve(14, 14)
	if multi < single+0.02 {
		t.Fatalf("multistage resolution (%.2f) not clearly better than single-stage (%.2f) at separation %d",
			multi, single, sep)
	}
	if multi < 0.9 {
		t.Fatalf("multistage chip resolves %d-bit separation only %.2f of the time", sep, multi)
	}
}

func TestCircuitValidation(t *testing.T) {
	mem := testMemory(4, 1000, 67)
	if _, err := NewCircuit(Config{D: 999, C: 4}, mem, 1); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := NewCircuit(Config{D: 1000, C: 5}, mem, 1); err == nil {
		t.Error("class mismatch accepted")
	}
	if _, err := NewCircuit(Config{D: 0, C: 4}, mem, 1); err == nil {
		t.Error("bad config accepted")
	}
	h, err := NewCircuit(Config{D: 1000, C: 4}, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() == "" || h.Quantum() <= 0 {
		t.Error("accessors broken")
	}
}

func TestCircuitOddClassCount(t *testing.T) {
	// The tournament must handle byes (odd contender counts).
	mem := testMemory(5, 2000, 68)
	h, err := NewCircuit(Config{D: 2000, C: 5}, mem, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(69, 69))
	for i := 0; i < 15; i++ {
		q := hv.FlipBits(mem.Class(i%5), 300, rng)
		if r := h.Search(q); r.Index != i%5 {
			t.Fatalf("odd-C tournament misclassified query near %d as %d", i%5, r.Index)
		}
	}
}
