package learn_test

import (
	"context"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdam/internal/assoc"
	"hdam/internal/encoder"
	"hdam/internal/itemmem"
	"hdam/internal/learn"
	"hdam/internal/serve"
	"hdam/internal/store"
	"hdam/internal/textgen"
)

const (
	soakDim   = 2048
	soakNGram = 3
	soakSeed  = 0x50a1
)

// TestTrainWhileServeSoak is the acceptance soak of the train-while-serve
// loop, run under the race detector by make ci: closed-loop search clients
// and ingest writers hammer one engine while periodic reconciles publish
// and hot-swap at least three generations. It enforces the invariants that
// must hold under concurrency:
//
//   - zero dropped answers: every submitted search returns a classification;
//   - no mixed-generation answers: each client's observed generation is
//     monotone, and the mid-run class only ever appears in answers stamped
//     with a post-swap generation;
//   - the class ingested mid-run is answered correctly after its reconcile.
func TestTrainWhileServeSoak(t *testing.T) {
	cfg := textgen.DefaultConfig()
	cfg.Seed = soakSeed
	langs := textgen.Catalog(cfg)
	base, fresh := langs[:4], langs[4]

	lcfg := learn.Config{
		Dim: soakDim, NGram: soakNGram, Seed: soakSeed,
		Dir: t.TempDir(), Block: true, Trainer: "soak",
	}
	rng := rand.New(rand.NewPCG(soakSeed, 1))
	var offline []learn.Example
	for _, l := range base {
		for i := 0; i < 40; i++ {
			offline = append(offline, learn.Example{Label: l.Name, Text: l.GenerateSentence(80, rng)})
		}
	}
	mem, err := learn.TrainOffline(nil, offline, lcfg)
	if err != nil {
		t.Fatal(err)
	}

	newEnc := func() *encoder.Encoder {
		im := itemmem.New(soakDim, soakSeed)
		im.Preload(itemmem.LatinAlphabet)
		return encoder.New(im, soakNGram)
	}
	eng, err := serve.New(mem, assoc.NewExact(mem), newEnc, serve.Config{
		Workers: 2, Policy: serve.Block, Seed: soakSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	reg, err := store.NewRegistry(store.RegistryConfig{
		Dir: lcfg.Dir,
		Swap: func(snap *store.Snapshot) error {
			m, s, err := learn.Model(snap)
			if err != nil {
				return err
			}
			_, err = eng.Swap(m, s, newEnc)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	lr, err := learn.New(mem, learn.Config{
		Dim: lcfg.Dim, NGram: lcfg.NGram, Seed: lcfg.Seed, Dir: lcfg.Dir,
		Block: true, Trainer: lcfg.Trainer,
		OnSnapshot: func(string) {
			if _, err := reg.Check(); err != nil {
				t.Errorf("registry check: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()

	// The engine starts at generation 1; every answer naming the mid-run
	// class must carry a generation from after the first swap.
	firstSwapGen := eng.Gen() + 1

	stop := make(chan struct{})
	var answered, dropped, earlyFresh atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(soakSeed, uint64(100+c)))
			var lastGen uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				l := base[(c+i)%len(base)]
				resp, err := eng.Submit(context.Background(), l.GenerateSentence(60, rng))
				if err != nil {
					dropped.Add(1)
					continue
				}
				answered.Add(1)
				if resp.Gen < lastGen {
					t.Errorf("client %d: generation went backwards: %d after %d", c, resp.Gen, lastGen)
					return
				}
				lastGen = resp.Gen
				if resp.Label == fresh.Name && resp.Gen < firstSwapGen {
					earlyFresh.Add(1)
				}
			}
		}(c)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(soakSeed, uint64(200+w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Mostly the new class, with refresh examples mixed in.
				l := fresh
				if i%3 == w%3 {
					l = base[i%len(base)]
				}
				if err := lr.Ingest(context.Background(), l.Name, l.GenerateSentence(80, rng)); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}(w)
	}

	// Four reconcile cuts while the load runs; ingest is continuous, so
	// each cut folds fresh examples and publishes a generation.
	swaps := 0
	for i := 0; i < 4; i++ {
		time.Sleep(80 * time.Millisecond)
		rep, err := lr.Reconcile()
		if err != nil {
			t.Fatalf("reconcile %d: %v", i, err)
		}
		if !rep.Skipped {
			swaps++
		}
	}
	close(stop)
	wg.Wait()

	if swaps < 3 {
		t.Errorf("published %d generations under load, want >= 3", swaps)
	}
	if got := eng.Stats().Swaps; got < 3 {
		t.Errorf("engine swapped %d times, want >= 3", got)
	}
	if dropped.Load() != 0 {
		t.Errorf("%d searches dropped (of %d answered), want 0", dropped.Load(), answered.Load())
	}
	if answered.Load() == 0 {
		t.Fatal("no searches answered during the soak")
	}
	if earlyFresh.Load() != 0 {
		t.Errorf("%d answers named the mid-run class before any swap generation", earlyFresh.Load())
	}

	// Post-reconcile, the engine classifies the mid-run class correctly.
	evalRng := rand.New(rand.NewPCG(soakSeed, 999))
	correct := 0
	const evalN = 20
	for i := 0; i < evalN; i++ {
		resp, err := eng.Submit(context.Background(), fresh.GenerateSentence(60, evalRng))
		if err != nil {
			t.Fatalf("post-swap submit: %v", err)
		}
		if resp.Label == fresh.Name {
			correct++
		}
	}
	if correct < evalN*8/10 {
		t.Errorf("mid-run class recall %d/%d after reconcile, want >= 80%%", correct, evalN)
	}
	t.Logf("soak: %d answered, %d generations, final recall %d/%d, learner %+v",
		answered.Load(), swaps, correct, evalN, lr.Stats())
}
