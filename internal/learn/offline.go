package learn

import (
	"errors"
	"fmt"

	"hdam/internal/core"
	"hdam/internal/hv"
)

// TrainOffline is the single-centroid reference trainer that online
// reconciliation is audited against: one accumulator per class, the base
// model's rows as weight-BaseWeight priors, the same label-derived tie-break
// seeds and the same row ordering (base order, then new labels sorted) as
// the Learner. Because bundling counters commute, ingesting exactly this
// example multiset — in any order, across any number of stripes and
// reconciles — and folding yields a bit-identical class matrix.
//
// It exists as the correctness oracle, not a performance path; it is
// single-threaded and holds every class's counters at once. Multi-centroid
// mode has no offline reference: centroid assignment depends on which
// generation an example raced against, so only k = 1 is deterministic
// end-to-end.
func TrainOffline(base *core.Memory, examples []Example, cfg Config) (*core.Memory, error) {
	cfg = cfg.withDefaults()
	if cfg.Centroids > 1 {
		return nil, errors.New("learn: offline reference supports single-centroid mode only")
	}
	if base != nil && cfg.Dim == 0 {
		cfg.Dim = base.Dim()
	}
	if cfg.Dim <= 0 || cfg.NGram < 1 {
		return nil, fmt.Errorf("learn: offline config dim %d n-gram %d", cfg.Dim, cfg.NGram)
	}
	if base != nil && base.Dim() != cfg.Dim {
		return nil, fmt.Errorf("learn: base dim %d, config dim %d", base.Dim(), cfg.Dim)
	}

	master := make(map[string]*hv.Accumulator)
	counts := make(map[string]uint64)
	var baseLabels []string
	if base != nil {
		baseLabels = base.Labels()
		for i, label := range baseLabels {
			acc := hv.NewAccumulator(cfg.Dim, tieSeed(cfg.Seed, label, 0))
			acc.AddWeighted(base.Class(i), cfg.BaseWeight)
			master[label] = acc
			counts[label] = uint64(cfg.BaseWeight)
		}
	}

	enc := EncoderFactory(cfg.Dim, cfg.NGram, cfg.Seed)()
	for i, ex := range examples {
		if err := checkExample(ex.Label, ex.Text); err != nil {
			return nil, fmt.Errorf("example %d: %w", i, err)
		}
		acc := master[ex.Label]
		if acc == nil {
			acc = hv.NewAccumulator(cfg.Dim, tieSeed(cfg.Seed, ex.Label, 0))
			master[ex.Label] = acc
		}
		// Zero-n-gram examples leave the counters untouched, matching the
		// online path's accounting.
		if n := enc.AccumulateText(acc, ex.Text); n > 0 {
			counts[ex.Label]++
		}
	}

	labels := orderLabels(baseLabels, master)
	rows := make([]*hv.Vector, 0, len(labels))
	kept := labels[:0:0]
	for _, label := range labels {
		if counts[label] == 0 {
			continue
		}
		rows = append(rows, master[label].Majority())
		kept = append(kept, label)
	}
	if len(rows) == 0 {
		return nil, errors.New("learn: nothing to fold (no base model and no encodable examples)")
	}
	return core.NewMemory(rows, kept)
}
