// Package learn implements train-while-serve: a subsystem that accepts
// labeled examples concurrently with search traffic and periodically folds
// them into a new packed class-matrix generation, published through the
// existing snapshot writer → store.Registry → serve.Engine.Swap path so
// learning never stops the engine.
//
// The HD bundling operation is naturally incremental — a class vector is
// just the majority over per-class counters — so the write side is a set of
// striped per-worker hv.Accumulator groups: every ingest worker bundles into
// its own counters and the read hot path is never touched (the split-counter
// plan Doppel applies to contended aggregates). A reconciliation coordinator
// then runs a phased merge:
//
//	freeze   — a barrier message through each stripe's ordered queue cuts a
//	           clean epoch: everything accepted before the barrier is in the
//	           frozen counters, everything after lands in the next epoch, and
//	           ingest never stops.
//	merge    — frozen stripe counters ripple into the master accumulators.
//	           Counter addition is commutative, so stripe count, assignment
//	           and merge order are all irrelevant to the result.
//	fold     — each master accumulator majority-folds to one packed binary
//	           row (the binarized-bundling step the hardware-optimization
//	           literature shows costs no accuracy).
//	write    — the rows become a snapshot written by the atomic store writer
//	           under a generation-numbered name.
//	publish  — the OnSnapshot hook (typically store.Registry.Check) swaps the
//	           generation into the engine with zero downtime.
//
// Determinism: the majority tie-break seed of every class is derived from
// its label (not its arrival order), and rows are emitted base-labels-first
// then new-labels-sorted, so a reconciled model is a pure function of the
// base model and the ingested example multiset. TrainOffline is the
// single-accumulator reference implementation of exactly that function; in
// single-centroid mode a Reconcile is bit-identical to it.
//
// Multi-centroid mode (Config.Centroids = k > 1) keeps k accumulators per
// class, MEMHD-style: each example is assigned to its nearest centroid from
// the last published generation (round-robin spread before a class has one),
// and search takes the min distance over a class's centroids. The snapshot
// stores C·k rows class-major with "<label>#<j>" row labels and the centroid
// count in META.
package learn

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hdam/internal/core"
	"hdam/internal/encoder"
	"hdam/internal/hv"
	"hdam/internal/itemmem"
	"hdam/internal/store"
)

// Typed failures. Match with errors.Is.
var (
	// ErrClosed is returned by Ingest and Reconcile after Close.
	ErrClosed = errors.New("learn: learner closed")
	// ErrOverloaded is returned by Ingest when every stripe queue is full
	// and the learner is not configured to block (admission control).
	ErrOverloaded = errors.New("learn: ingest overloaded")
	// ErrInvalidExample rejects an example the learner will not accept: an
	// empty or oversized label, a label containing the centroid separator,
	// or empty text.
	ErrInvalidExample = errors.New("learn: invalid example")
)

// centroidSep separates the class label from the centroid index in the row
// labels of a multi-centroid snapshot ("spanish#2"). Ingested labels may not
// contain it.
const centroidSep = "#"

// maxIngestLabel bounds ingested label length to what the wire protocol's
// answer labels can carry, so a learned class is always announceable.
const maxIngestLabel = 255

// Example is one labeled training example.
type Example struct {
	Label string
	Text  string
}

// Config tunes a Learner.
type Config struct {
	// Dim is the hypervector dimensionality (must match the base model).
	Dim int
	// NGram is the n-gram order of the text encoder.
	NGram int
	// Seed is the item-memory / pipeline seed shared with serving.
	Seed uint64
	// Centroids is the per-class centroid count k (default 1). With k > 1
	// the learner runs MEMHD-style multi-centroid classes.
	Centroids int
	// Stripes is the number of ingest workers, each owning a private
	// accumulator set (default GOMAXPROCS).
	Stripes int
	// Queue is the per-stripe pending-example capacity before admission
	// control engages (default 256).
	Queue int
	// Block selects the admission policy on full queues: true applies
	// backpressure bounded by the Ingest context, false (default) fails
	// fast with ErrOverloaded.
	Block bool
	// BaseWeight is the bundling weight the base model's class rows carry
	// as a prior in their accumulators (default 1: with no new examples a
	// class folds back to exactly its base row). It is also the number of
	// examples the prior outweighs before drifting.
	BaseWeight int
	// Dir is the snapshot output directory (required); generations are
	// written as Prefix-%06d.hds so the registry's name tiebreak orders
	// them even within one mtime granule.
	Dir string
	// Prefix is the generation file prefix (default "learn").
	Prefix string
	// Interval is Run's auto-reconcile period (default 2s).
	Interval time.Duration
	// Trainer is the provenance trainer string (default "learn").
	Trainer string
	// OnSnapshot, when set, observes every published generation path —
	// typically a closure poking store.Registry.Check so the swap happens
	// immediately instead of on the next poll.
	OnSnapshot func(path string)
	// Now supplies provenance timestamps (default time.Now).
	Now func() time.Time
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Centroids <= 0 {
		c.Centroids = 1
	}
	if c.Stripes <= 0 {
		c.Stripes = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 256
	}
	if c.BaseWeight <= 0 {
		c.BaseWeight = 1
	}
	if c.Prefix == "" {
		c.Prefix = "learn"
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Trainer == "" {
		c.Trainer = "learn"
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// check validates the resolved configuration.
func (c Config) check() error {
	switch {
	case c.Dim <= 0:
		return fmt.Errorf("learn: dim %d", c.Dim)
	case c.NGram < 1:
		return fmt.Errorf("learn: n-gram %d", c.NGram)
	case c.Dir == "":
		return errors.New("learn: snapshot directory required")
	}
	return nil
}

// EncoderFactory returns a factory producing fresh deterministic encoders
// for the given pipeline parameters — the same construction serving uses, so
// learner and engine encode bit-identically.
func EncoderFactory(dim, ngram int, seed uint64) func() *encoder.Encoder {
	return func() *encoder.Encoder {
		im := itemmem.New(dim, seed)
		im.Preload(itemmem.LatinAlphabet)
		return encoder.New(im, ngram)
	}
}

// tieSeed derives the majority tie-break seed for class centroid (label, j).
// Deriving it from the label (FNV-1a) rather than any arrival-order index is
// what makes a reconciled fold independent of ingest interleaving and stripe
// assignment — the determinism TrainOffline is checked against.
func tieSeed(seed uint64, label string, j int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return seed ^ h ^ (uint64(j) * 0x9e3779b97f4a7c15)
}

// checkExample validates one ingested example.
func checkExample(label, text string) error {
	switch {
	case label == "":
		return fmt.Errorf("%w: empty label", ErrInvalidExample)
	case len(label) > maxIngestLabel:
		return fmt.Errorf("%w: %d-byte label (limit %d)", ErrInvalidExample, len(label), maxIngestLabel)
	case strings.Contains(label, centroidSep):
		return fmt.Errorf("%w: label %q contains %q", ErrInvalidExample, label, centroidSep)
	case text == "":
		return fmt.Errorf("%w: empty text", ErrInvalidExample)
	}
	return nil
}

// classAccs is one class's k centroid accumulators with their example
// counts; slots stay nil until first touched (stripe side).
type classAccs struct {
	accs []*hv.Accumulator
	n    []uint64
}

func newClassAccs(k int) *classAccs {
	return &classAccs{accs: make([]*hv.Accumulator, k), n: make([]uint64, k)}
}

// stripeEpoch is the unit the freeze barrier cuts: one stripe's accumulated
// counters since the last reconcile.
type stripeEpoch struct {
	classes  map[string]*classAccs
	examples uint64
}

func newEpoch() *stripeEpoch { return &stripeEpoch{classes: make(map[string]*classAccs)} }

// stripeMsg is one queue entry: an example, or (freeze != nil) the epoch
// barrier, answered with the stripe's frozen epoch.
type stripeMsg struct {
	ex     Example
	freeze chan *stripeEpoch
}

type stripe struct {
	ch   chan stripeMsg
	done chan struct{} // closed when the worker exits
}

// centroidView is the published fold of the last reconcile, read by ingest
// workers for assign-to-nearest.
type centroidView struct {
	byLabel map[string][]*hv.Vector
}

// Stats is a snapshot of the learner's counters.
type Stats struct {
	Ingested   uint64        // examples accepted into stripe queues
	Rejected   uint64        // examples refused by admission control
	Invalid    uint64        // examples refused by validation
	Empty      uint64        // accepted examples that encoded to zero n-grams
	Pending    int           // examples queued, not yet bundled
	Reconciles uint64        // completed reconcile→snapshot cycles
	Skipped    uint64        // reconcile ticks with nothing new to fold
	Gen        uint64        // latest published generation (0 before the first)
	Examples   uint64        // examples folded into the model so far
	Classes    int           // classes in the latest generation
	Centroids  int           // centroids per class
	LastFold   time.Duration // duration of the latest reconcile
}

// Learner is the train-while-serve coordinator. Construct with New; feed it
// with Ingest (concurrently, from any number of goroutines); fold and
// publish with Reconcile or the Run loop; stop with Close.
type Learner struct {
	cfg  Config
	k    int
	base *core.Memory

	mu      sync.RWMutex // guards closed vs. stripe sends
	closed  bool
	stripes []*stripe
	rr      atomic.Uint64

	recMu      sync.Mutex // serializes reconciles; guards master
	master     map[string]*classAccs
	baseLabels []string

	view atomic.Pointer[centroidView]

	ingested, rejected, invalid, empty atomic.Uint64
	reconciles, skips                  atomic.Uint64
	gen, total                         atomic.Uint64
	classes                            atomic.Int64
	lastFoldNs                         atomic.Int64
}

// New builds a learner, optionally seeded with a base model: each base class
// starts with its packed row as a weight-BaseWeight prior in centroid 0, so
// an untouched class folds back to exactly its base row and the base order
// is preserved in every generation. base may be nil (cold start). The base
// memory must be one row per class (for a multi-centroid snapshot, pass the
// class-level memory returned by Model; only the representative rows seed
// the prior, since packed rows cannot recover their counters).
func New(base *core.Memory, cfg Config) (*Learner, error) {
	cfg = cfg.withDefaults()
	if base != nil && cfg.Dim == 0 {
		cfg.Dim = base.Dim()
	}
	if err := cfg.check(); err != nil {
		return nil, err
	}
	if base != nil && base.Dim() != cfg.Dim {
		return nil, fmt.Errorf("learn: base dim %d, config dim %d", base.Dim(), cfg.Dim)
	}
	l := &Learner{cfg: cfg, k: cfg.Centroids, base: base, master: make(map[string]*classAccs)}
	if base != nil {
		l.baseLabels = base.Labels()
		for i, label := range l.baseLabels {
			if strings.Contains(label, centroidSep) {
				return nil, fmt.Errorf("learn: base label %q contains the centroid separator %q", label, centroidSep)
			}
			mc := l.newMasterClass(label)
			mc.accs[0].AddWeighted(base.Class(i), cfg.BaseWeight)
			mc.n[0] = uint64(cfg.BaseWeight)
			l.master[label] = mc
		}
	}
	l.stripes = make([]*stripe, cfg.Stripes)
	for i := range l.stripes {
		s := &stripe{ch: make(chan stripeMsg, cfg.Queue), done: make(chan struct{})}
		l.stripes[i] = s
		go l.stripeLoop(s)
	}
	return l, nil
}

// newMasterClass allocates one class's master accumulators, every centroid
// seeded by (label, j) so folds are arrival-order independent.
func (l *Learner) newMasterClass(label string) *classAccs {
	mc := newClassAccs(l.k)
	for j := 0; j < l.k; j++ {
		mc.accs[j] = hv.NewAccumulator(l.cfg.Dim, tieSeed(l.cfg.Seed, label, j))
	}
	return mc
}

// Config returns the resolved configuration.
func (l *Learner) Config() Config { return l.cfg }

// Gen returns the latest published generation number (0 before the first).
func (l *Learner) Gen() uint64 { return l.gen.Load() }

// Ingest accepts one labeled example for the next reconcile. It is safe for
// concurrent use and never touches the search hot path: the example goes to
// a stripe queue (round-robin, skipping full stripes) and is bundled by that
// stripe's worker. On all-full queues the admission policy decides: Block
// waits (bounded by ctx), else ErrOverloaded.
func (l *Learner) Ingest(ctx context.Context, label, text string) error {
	if err := checkExample(label, text); err != nil {
		l.invalid.Add(1)
		return err
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return ErrClosed
	}
	msg := stripeMsg{ex: Example{Label: label, Text: text}}
	n := len(l.stripes)
	start := int(l.rr.Add(1)) % n
	for t := 0; t < n; t++ {
		select {
		case l.stripes[(start+t)%n].ch <- msg:
			l.ingested.Add(1)
			return nil
		default:
		}
	}
	if !l.cfg.Block {
		l.rejected.Add(1)
		return ErrOverloaded
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case l.stripes[start].ch <- msg:
		l.ingested.Add(1)
		return nil
	case <-ctx.Done():
		l.rejected.Add(1)
		return ctx.Err()
	}
}

// stripeLoop is one ingest worker: it owns a private encoder and a private
// epoch of class accumulators, so bundling requires no locks and no sharing.
// A freeze message swaps in a fresh epoch and hands the old one — a clean
// cut of everything accepted before the barrier — to the coordinator.
func (l *Learner) stripeLoop(s *stripe) {
	defer close(s.done)
	enc := EncoderFactory(l.cfg.Dim, l.cfg.NGram, l.cfg.Seed)()
	epoch := newEpoch()
	for msg := range s.ch {
		if msg.freeze != nil {
			msg.freeze <- epoch
			epoch = newEpoch()
			continue
		}
		ca := epoch.classes[msg.ex.Label]
		if ca == nil {
			ca = newClassAccs(l.k)
			epoch.classes[msg.ex.Label] = ca
		}
		j := 0
		if l.k > 1 {
			j = l.assign(enc, ca, msg.ex)
		}
		if ca.accs[j] == nil {
			// Stripe accumulators never fold, so their seed is irrelevant.
			ca.accs[j] = hv.NewAccumulator(l.cfg.Dim, 0)
		}
		if n := enc.AccumulateText(ca.accs[j], msg.ex.Text); n == 0 {
			l.empty.Add(1)
			continue
		}
		ca.n[j]++
		epoch.examples++
	}
}

// assign picks the centroid slot for one example in multi-centroid mode:
// the nearest centroid of the last published generation when the class has
// one, else the stripe-locally least-loaded slot (a round-robin spread that
// seeds diversity for classes the model has not folded yet).
func (l *Learner) assign(enc *encoder.Encoder, ca *classAccs, ex Example) int {
	if view := l.view.Load(); view != nil {
		if cents := view.byLabel[ex.Label]; len(cents) > 0 {
			if q, n := enc.EncodeText(ex.Text, l.cfg.Seed); n > 0 {
				best, bestD := 0, hv.Hamming(q, cents[0])
				for j := 1; j < len(cents); j++ {
					if d := hv.Hamming(q, cents[j]); d < bestD {
						best, bestD = j, d
					}
				}
				return best
			}
		}
	}
	best := 0
	for j := 1; j < l.k; j++ {
		if ca.n[j] < ca.n[best] {
			best = j
		}
	}
	return best
}

// Report describes one reconcile.
type Report struct {
	Gen         uint64        // generation published (unchanged when skipped)
	Path        string        // snapshot file written ("" when skipped)
	Classes     int           // classes in the generation
	Rows        int           // matrix rows (Classes × Centroids)
	NewExamples uint64        // examples folded by this reconcile
	Examples    uint64        // cumulative examples in the model
	Duration    time.Duration // freeze→publish wall time
	Skipped     bool          // nothing new: no snapshot written
}

// Reconcile runs one phased merge: freeze every stripe's epoch, merge the
// frozen counters into the master accumulators, majority-fold to packed
// rows, write a generation snapshot via the atomic store writer, and invoke
// the publish hook. Ingest keeps running throughout — only the barrier
// message itself passes through each stripe queue. A reconcile with nothing
// new to fold is skipped (no snapshot) once a first generation exists.
// Reconciles are serialized.
func (l *Learner) Reconcile() (Report, error) {
	l.recMu.Lock()
	defer l.recMu.Unlock()
	start := time.Now()

	// Phase 1: freeze. The barrier rides each stripe's ordered queue, so the
	// epoch cut is exact without ever pausing ingest.
	l.mu.RLock()
	if l.closed {
		l.mu.RUnlock()
		return Report{}, ErrClosed
	}
	epochs := make([]*stripeEpoch, len(l.stripes))
	var wg sync.WaitGroup
	for i, s := range l.stripes {
		wg.Add(1)
		go func(i int, s *stripe) {
			defer wg.Done()
			fz := make(chan *stripeEpoch, 1)
			s.ch <- stripeMsg{freeze: fz}
			epochs[i] = <-fz
		}(i, s)
	}
	wg.Wait()
	l.mu.RUnlock()

	// Phase 2: merge. Commutative counter addition makes stripe order,
	// assignment and interleaving all irrelevant here.
	var newEx uint64
	for _, ep := range epochs {
		newEx += ep.examples
		for label, ca := range ep.classes {
			mc := l.master[label]
			if mc == nil {
				mc = l.newMasterClass(label)
				l.master[label] = mc
			}
			for j := 0; j < l.k; j++ {
				if ca.accs[j] != nil && ca.accs[j].Count() > 0 {
					mc.accs[j].Merge(ca.accs[j])
					mc.n[j] += ca.n[j]
				}
			}
		}
	}
	if newEx == 0 && l.gen.Load() > 0 {
		l.skips.Add(1)
		return Report{Gen: l.gen.Load(), Examples: l.total.Load(), Skipped: true, Duration: time.Since(start)}, nil
	}
	total := l.total.Add(newEx)

	// Phase 3: fold.
	mem, rowLabels, view, err := l.fold()
	if err != nil {
		return Report{}, err
	}

	// Phase 4: write the generation snapshot atomically.
	gen := l.gen.Load() + 1
	storeCfg := store.Config{Dim: l.cfg.Dim, NGram: l.cfg.NGram, Seed: l.cfg.Seed}
	if l.k > 1 {
		storeCfg.Centroids = l.k
	}
	prov := store.Provenance{
		Trainer:       l.cfg.Trainer,
		CreatedAt:     l.cfg.Now(),
		Note:          fmt.Sprintf("learn generation %d", gen),
		LearnExamples: total,
	}
	snap, err := store.Capture(mem, storeCfg, prov)
	if err != nil {
		return Report{}, err
	}
	path := filepath.Join(l.cfg.Dir, fmt.Sprintf("%s-%06d.hds", l.cfg.Prefix, gen))
	if err := store.Save(path, snap); err != nil {
		return Report{}, err
	}

	// Phase 5: publish — the new centroids for assign-to-nearest, then the
	// path for the registry to swap in.
	l.view.Store(view)
	l.gen.Store(gen)
	classes := len(rowLabels) / l.k
	l.classes.Store(int64(classes))
	l.reconciles.Add(1)
	d := time.Since(start)
	l.lastFoldNs.Store(int64(d))
	if l.cfg.OnSnapshot != nil {
		l.cfg.OnSnapshot(path)
	}
	return Report{
		Gen: gen, Path: path, Classes: classes, Rows: len(rowLabels),
		NewExamples: newEx, Examples: total, Duration: d,
	}, nil
}

// orderLabels returns the deterministic class order every generation uses:
// base labels in base order, then learned labels sorted.
func orderLabels[V any](baseLabels []string, master map[string]V) []string {
	labels := make([]string, 0, len(master))
	inBase := make(map[string]bool, len(baseLabels))
	for _, lab := range baseLabels {
		if _, ok := master[lab]; ok {
			labels = append(labels, lab)
			inBase[lab] = true
		}
	}
	var rest []string
	for lab := range master {
		if !inBase[lab] {
			rest = append(rest, lab)
		}
	}
	sort.Strings(rest)
	return append(labels, rest...)
}

// fold majority-folds the master accumulators into the generation's memory.
// Classes whose every centroid is still empty (all their examples encoded to
// zero n-grams) are left out entirely; within a kept class, empty centroid
// slots are padded with the class's first folded centroid so the layout
// stays a uniform C×k (a duplicate row never changes a min-distance search).
func (l *Learner) fold() (*core.Memory, []string, *centroidView, error) {
	labels := orderLabels(l.baseLabels, l.master)
	rows := make([]*hv.Vector, 0, len(labels)*l.k)
	rowLabels := make([]string, 0, len(labels)*l.k)
	view := &centroidView{byLabel: make(map[string][]*hv.Vector, len(labels))}
	for _, label := range labels {
		mc := l.master[label]
		folded := make([]*hv.Vector, l.k)
		var first *hv.Vector
		for j := 0; j < l.k; j++ {
			if mc.n[j] > 0 {
				folded[j] = mc.accs[j].Majority()
				if first == nil {
					first = folded[j]
				}
			}
		}
		if first == nil {
			continue
		}
		for j := 0; j < l.k; j++ {
			if folded[j] == nil {
				folded[j] = first
			}
			rows = append(rows, folded[j])
			if l.k > 1 {
				rowLabels = append(rowLabels, fmt.Sprintf("%s%s%d", label, centroidSep, j))
			} else {
				rowLabels = append(rowLabels, label)
			}
		}
		view.byLabel[label] = folded
	}
	if len(rows) == 0 {
		return nil, nil, nil, errors.New("learn: nothing to fold (no base model and no encodable examples)")
	}
	mem, err := core.NewMemory(rows, rowLabels)
	if err != nil {
		return nil, nil, nil, err
	}
	return mem, rowLabels, view, nil
}

// Run reconciles on a ticker until ctx ends, returning ctx's error (or nil
// if the learner is Closed underneath it).
func (l *Learner) Run(ctx context.Context) error {
	t := time.NewTicker(l.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if _, err := l.Reconcile(); err != nil {
				if errors.Is(err, ErrClosed) {
					return nil
				}
				return err
			}
		}
	}
}

// Stats returns a snapshot of the learner's counters.
func (l *Learner) Stats() Stats {
	pending := 0
	l.mu.RLock()
	for _, s := range l.stripes {
		pending += len(s.ch)
	}
	l.mu.RUnlock()
	return Stats{
		Ingested:   l.ingested.Load(),
		Rejected:   l.rejected.Load(),
		Invalid:    l.invalid.Load(),
		Empty:      l.empty.Load(),
		Pending:    pending,
		Reconciles: l.reconciles.Load(),
		Skipped:    l.skips.Load(),
		Gen:        l.gen.Load(),
		Examples:   l.total.Load(),
		Classes:    int(l.classes.Load()),
		Centroids:  l.k,
		LastFold:   time.Duration(l.lastFoldNs.Load()),
	}
}

// Close stops intake and the stripe workers. Examples already queued are
// bundled into the (now unreachable) next epoch; call Reconcile before
// Close to fold and publish everything accepted. Idempotent.
func (l *Learner) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	for _, s := range l.stripes {
		close(s.ch)
	}
	l.mu.Unlock()
	for _, s := range l.stripes {
		<-s.done
	}
}
