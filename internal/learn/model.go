package learn

import (
	"fmt"
	"strconv"
	"strings"

	"hdam/internal/assoc"
	"hdam/internal/core"
	"hdam/internal/hv"
	"hdam/internal/store"
)

// Model builds the servable (memory, searcher) pair for a snapshot,
// resolving its centroid layout. A plain snapshot (Centroids ≤ 1) serves
// directly with the exact searcher. A multi-centroid snapshot serves a
// class-level memory — one representative row and a clean label per class,
// so answer labels stay "spanish", never "spanish#2" — paired with a
// CentroidSearcher that still scans all C·k rows and scores each class by
// its best centroid.
func Model(snap *store.Snapshot) (*core.Memory, core.Searcher, error) {
	k := snap.Config().Centroids
	rows := snap.Memory()
	if k <= 1 {
		return rows, assoc.NewExact(rows), nil
	}
	if rows.Classes()%k != 0 {
		return nil, nil, fmt.Errorf("learn: %d rows not divisible by centroid count %d", rows.Classes(), k)
	}
	classes := rows.Classes() / k
	reps := make([]*hv.Vector, classes)
	labels := make([]string, classes)
	for c := 0; c < classes; c++ {
		for j := 0; j < k; j++ {
			label, idx, err := splitCentroidLabel(rows.Label(c*k + j))
			if err != nil {
				return nil, nil, err
			}
			if idx != j {
				return nil, nil, fmt.Errorf("learn: row %d labeled %q, want centroid %d", c*k+j, rows.Label(c*k+j), j)
			}
			if j == 0 {
				labels[c] = label
			} else if label != labels[c] {
				return nil, nil, fmt.Errorf("learn: class %d mixes labels %q and %q", c, labels[c], label)
			}
		}
		reps[c] = rows.Class(c * k)
	}
	mem, err := core.NewMemory(reps, labels)
	if err != nil {
		return nil, nil, fmt.Errorf("learn: class-level memory: %w", err)
	}
	return mem, &CentroidSearcher{cm: rows.ClassMatrix(), k: k, classes: classes}, nil
}

// splitCentroidLabel parses "<class>#<j>".
func splitCentroidLabel(row string) (label string, j int, err error) {
	i := strings.LastIndex(row, centroidSep)
	if i <= 0 || i == len(row)-1 {
		return "", 0, fmt.Errorf("learn: row label %q is not <class>%s<centroid>", row, centroidSep)
	}
	j, err = strconv.Atoi(row[i+1:])
	if err != nil || j < 0 {
		return "", 0, fmt.Errorf("learn: row label %q has no centroid index", row)
	}
	return row[:i], j, nil
}

// CentroidSearcher is the exact multi-centroid searcher: one streaming
// distance pass over the full C·k row matrix, then each class scored by the
// minimum over its k centroids. Result.Index is the class index (matching
// the class-level memory Model returns) and Result.Distance the winning
// centroid's exact Hamming distance. Ties resolve to the lowest class index,
// matching the deterministic comparator-tree rule everywhere else.
type CentroidSearcher struct {
	cm      *core.ClassMatrix
	k       int
	classes int
}

var _ core.BufferedSearcher = (*CentroidSearcher)(nil)

// Search returns the winning class for q.
func (s *CentroidSearcher) Search(q *hv.Vector) core.Result {
	var buf []int
	return s.SearchBuf(q, &buf)
}

// SearchBuf is Search with a reusable distance buffer (resized to C·k).
func (s *CentroidSearcher) SearchBuf(q *hv.Vector, buf *[]int) core.Result {
	rows := s.classes * s.k
	ds := *buf
	if cap(ds) < rows {
		ds = make([]int, rows)
	}
	ds = ds[:rows]
	*buf = ds
	s.cm.DistancesInto(ds, q)
	best, bestD := 0, -1
	for c := 0; c < s.classes; c++ {
		cd := ds[c*s.k]
		for j := 1; j < s.k; j++ {
			if d := ds[c*s.k+j]; d < cd {
				cd = d
			}
		}
		if bestD < 0 || cd < bestD {
			best, bestD = c, cd
		}
	}
	return core.Result{Index: best, Distance: bestD}
}

// Name identifies the design for reports.
func (s *CentroidSearcher) Name() string {
	return fmt.Sprintf("centroid-exact k=%d", s.k)
}
