package learn

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hdam/internal/core"
	"hdam/internal/hv"
	"hdam/internal/store"
)

const (
	testDim   = 1024
	testNGram = 3
	testSeed  = 0xfeed
)

// testBase builds a small deterministic base model.
func testBase(t *testing.T, classes int) *core.Memory {
	t.Helper()
	rng := rand.New(rand.NewPCG(77, 13))
	rows := make([]*hv.Vector, classes)
	labels := make([]string, classes)
	for i := range rows {
		rows[i] = hv.Random(testDim, rng)
		labels[i] = fmt.Sprintf("base%02d", i)
	}
	mem, err := core.NewMemory(rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	return mem
}

// corpus synthesizes a deterministic labeled example set: per class a
// distinct alphabet bias so classes are actually separable.
func corpus(seed uint64, labels []string, perClass int) []Example {
	rng := rand.New(rand.NewPCG(seed, 0x5eed))
	letters := "abcdefghijklmnopqrstuvwxyz "
	var out []Example
	for ci, label := range labels {
		for e := 0; e < perClass; e++ {
			var b strings.Builder
			for w := 0; w < 80; w++ {
				// Bias each class heavily toward its own slice of the
				// alphabet so classes are separable by trigram statistics.
				if rng.IntN(8) > 0 {
					b.WriteByte(letters[(ci*5+rng.IntN(4))%26])
				} else {
					b.WriteByte(letters[rng.IntN(len(letters))])
				}
			}
			out = append(out, Example{Label: label, Text: b.String()})
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{Dim: testDim, NGram: testNGram, Seed: testSeed, Dir: t.TempDir()}
}

// memEqual asserts two memories are bit-identical with identical labels.
func memEqual(t *testing.T, got, want *core.Memory, what string) {
	t.Helper()
	if got.Classes() != want.Classes() {
		t.Fatalf("%s: %d classes, want %d\ngot %v\nwant %v", what, got.Classes(), want.Classes(), got.Labels(), want.Labels())
	}
	for i := 0; i < want.Classes(); i++ {
		if got.Label(i) != want.Label(i) {
			t.Fatalf("%s: label[%d] = %q, want %q", what, i, got.Label(i), want.Label(i))
		}
		if !got.Class(i).Equal(want.Class(i)) {
			t.Fatalf("%s: class %q not bit-identical", what, want.Label(i))
		}
	}
}

// TestReconcileBitIdenticalToOffline is the subsystem's central determinism
// claim: concurrent striped ingest, split across several reconciles in a
// shuffled order, folds to exactly the matrix the single-threaded offline
// reference produces from the same example multiset.
func TestReconcileBitIdenticalToOffline(t *testing.T) {
	base := testBase(t, 4)
	cfg := testConfig(t)
	cfg.Stripes = 4
	cfg.Queue = 64
	cfg.Block = true

	labels := []string{"base00", "base02", "newlang", "otherlang"}
	examples := corpus(101, labels, 50)

	lr, err := New(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()

	// Ingest from several goroutines, reconciling mid-stream ≥3 times so the
	// fold is exercised across multiple epochs.
	chunks := 4
	per := len(examples) / chunks
	for c := 0; c < chunks; c++ {
		part := examples[c*per:]
		if c < chunks-1 {
			part = part[:per]
		}
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(part); i += 3 {
					if err := lr.Ingest(context.Background(), part[i].Label, part[i].Text); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		rep, err := lr.Reconcile()
		if err != nil {
			t.Fatalf("reconcile %d: %v", c, err)
		}
		if rep.Skipped {
			t.Fatalf("reconcile %d skipped with new examples", c)
		}
	}

	st := lr.Stats()
	if st.Reconciles < 3 || st.Gen != uint64(chunks) {
		t.Fatalf("stats %+v, want ≥3 reconciles and gen %d", st, chunks)
	}
	if st.Examples != uint64(len(examples)) {
		t.Fatalf("folded %d examples, want %d", st.Examples, len(examples))
	}

	ref, err := TrainOffline(base, examples, cfg)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := store.Open(filepath.Join(cfg.Dir, fmt.Sprintf("learn-%06d.hds", chunks)))
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	memEqual(t, snap.Memory(), ref, "online vs offline")
	if snap.Provenance().LearnExamples != uint64(len(examples)) {
		t.Fatalf("snapshot learn_examples = %d, want %d", snap.Provenance().LearnExamples, len(examples))
	}

	// Order independence of the reference itself: reversed multiset, same fold.
	rev := make([]Example, len(examples))
	for i, ex := range examples {
		rev[len(examples)-1-i] = ex
	}
	ref2, err := TrainOffline(base, rev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	memEqual(t, ref2, ref, "offline order independence")
}

// TestFirstGenerationIsBase checks the bootstrap: a reconcile before any
// examples publishes the base model verbatim (weight-1 prior folds back to
// exactly the base rows, in base order).
func TestFirstGenerationIsBase(t *testing.T) {
	base := testBase(t, 5)
	cfg := testConfig(t)
	var published []string
	cfg.OnSnapshot = func(p string) { published = append(published, p) }
	lr, err := New(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()

	rep, err := lr.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped || rep.Gen != 1 || len(published) != 1 || published[0] != rep.Path {
		t.Fatalf("bootstrap reconcile: %+v, published %v", rep, published)
	}
	snap, err := store.Open(rep.Path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	memEqual(t, snap.Memory(), base, "bootstrap generation")

	// With nothing new, the next reconcile is a skip — no snapshot churn.
	rep2, err := lr.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Skipped || len(published) != 1 {
		t.Fatalf("idle reconcile not skipped: %+v, published %v", rep2, published)
	}
}

// TestNewClassLearned checks that a class unseen in the base model becomes
// answerable after one reconcile: its fresh examples classify to it.
func TestNewClassLearned(t *testing.T) {
	base := testBase(t, 3)
	cfg := testConfig(t)
	lr, err := New(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()

	train := corpus(7, []string{"martian"}, 60)
	for _, ex := range train {
		if err := lr.Ingest(context.Background(), ex.Label, ex.Text); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := lr.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classes != 4 {
		t.Fatalf("classes = %d, want 4 (3 base + martian)", rep.Classes)
	}
	snap, err := store.Open(rep.Path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	mem, searcher, err := Model(snap)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncoderFactory(testDim, testNGram, testSeed)()
	held := corpus(8, []string{"martian"}, 20)
	correct := 0
	for _, ex := range held {
		q, n := enc.EncodeText(ex.Text, testSeed)
		if n == 0 {
			t.Fatal("held-out example encoded empty")
		}
		if mem.Label(searcher.Search(q).Index) == "martian" {
			correct++
		}
	}
	if correct < len(held)*9/10 {
		t.Fatalf("new class recall %d/%d, want ≥90%%", correct, len(held))
	}
}

// TestMultiCentroid checks the MEMHD-style layout end to end: k accumulators
// per class, C·k rows class-major with "#j" labels and META centroids, a
// class-level Model with clean labels, and min-over-centroid search that
// still classifies.
func TestMultiCentroid(t *testing.T) {
	cfg := testConfig(t)
	cfg.Centroids = 3
	lr, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()

	labels := []string{"alpha", "beta", "gamma"}
	for _, ex := range corpus(21, labels, 80) {
		if err := lr.Ingest(context.Background(), ex.Label, ex.Text); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lr.Reconcile(); err != nil {
		t.Fatal(err)
	}
	// A second round exercises assign-to-nearest against the published view.
	for _, ex := range corpus(22, labels, 80) {
		if err := lr.Ingest(context.Background(), ex.Label, ex.Text); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := lr.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 9 || rep.Classes != 3 {
		t.Fatalf("report %+v, want 3 classes × 3 centroids = 9 rows", rep)
	}

	snap, err := store.Open(rep.Path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if snap.Config().Centroids != 3 {
		t.Fatalf("snapshot centroids = %d", snap.Config().Centroids)
	}
	raw := snap.Memory()
	if raw.Classes() != 9 || raw.Label(0) != "alpha#0" || raw.Label(5) != "beta#2" {
		t.Fatalf("row layout: %v", raw.Labels())
	}

	mem, searcher, err := Model(snap)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Classes() != 3 || mem.Label(0) != "alpha" {
		t.Fatalf("class-level memory: %v", mem.Labels())
	}
	if !strings.Contains(searcher.Name(), "centroid") {
		t.Fatalf("searcher %q", searcher.Name())
	}

	enc := EncoderFactory(testDim, testNGram, testSeed)()
	correct, total := 0, 0
	for _, ex := range corpus(23, labels, 20) {
		q, n := enc.EncodeText(ex.Text, testSeed)
		if n == 0 {
			continue
		}
		total++
		res := searcher.Search(q)
		if res.Index < 0 || res.Index >= 3 {
			t.Fatalf("class index %d out of range", res.Index)
		}
		if mem.Label(res.Index) == ex.Label {
			correct++
		}
	}
	if correct < total*8/10 {
		t.Fatalf("multi-centroid accuracy %d/%d", correct, total)
	}

	// SearchBuf agrees with Search and reuses the buffer.
	bs := searcher.(core.BufferedSearcher)
	var buf []int
	q, _ := enc.EncodeText("the quick brown fox", testSeed)
	if a, b := searcher.Search(q), bs.SearchBuf(q, &buf); a != b || len(buf) != 9 {
		t.Fatalf("SearchBuf %+v vs Search %+v, buf %d", b, a, len(buf))
	}
}

// TestAdmissionControl checks both policies on saturated stripe queues, and
// example validation.
func TestAdmissionControl(t *testing.T) {
	cfg := testConfig(t)
	cfg.Stripes = 1
	cfg.Queue = 1

	lr, err := New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stall the single stripe worker with a freeze barrier nobody answers
	// yet, so queued examples cannot drain.
	fz := make(chan *stripeEpoch, 1)
	stall := make(chan *stripeEpoch)
	lr.stripes[0].ch <- stripeMsg{freeze: fz}
	<-fz
	lr.stripes[0].ch <- stripeMsg{freeze: stall} // worker blocks sending this

	// One slot fills, then fail-fast admission must refuse.
	if err := lr.Ingest(context.Background(), "x", "hello"); err != nil {
		t.Fatal(err)
	}
	if err := lr.Ingest(context.Background(), "x", "hello"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: %v, want ErrOverloaded", err)
	}

	// Block policy: bounded by context.
	lr.cfg.Block = true
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := lr.Ingest(ctx, "x", "hello"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked ingest: %v, want deadline", err)
	}
	<-stall // release the worker

	// Validation rejections.
	for _, bad := range []struct{ label, text string }{
		{"", "text"},
		{"has#sep", "text"},
		{strings.Repeat("x", 300), "text"},
		{"ok", ""},
	} {
		if err := lr.Ingest(context.Background(), bad.label, bad.text); !errors.Is(err, ErrInvalidExample) {
			t.Fatalf("Ingest(%q, %q) = %v, want ErrInvalidExample", bad.label, bad.text, err)
		}
	}

	st := lr.Stats()
	if st.Rejected != 2 || st.Invalid != 4 {
		t.Fatalf("stats %+v, want 2 rejected, 4 invalid", st)
	}

	lr.Close()
	lr.Close() // idempotent
	if err := lr.Ingest(context.Background(), "x", "hello"); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close ingest: %v, want ErrClosed", err)
	}
	if _, err := lr.Reconcile(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close reconcile: %v, want ErrClosed", err)
	}
}

// TestRunLoop drives the ticker loop: examples ingested while Run owns
// reconciliation must be published without explicit Reconcile calls.
func TestRunLoop(t *testing.T) {
	cfg := testConfig(t)
	cfg.Interval = 10 * time.Millisecond
	gens := make(chan string, 64)
	cfg.OnSnapshot = func(p string) { gens <- p }
	lr, err := New(testBase(t, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- lr.Run(ctx) }()

	for _, ex := range corpus(31, []string{"fresh"}, 30) {
		if err := lr.Ingest(context.Background(), ex.Label, ex.Text); err != nil && !errors.Is(err, ErrOverloaded) {
			t.Error(err)
		}
	}
	select {
	case <-gens:
	case <-time.After(5 * time.Second):
		t.Fatal("Run produced no generation")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
}

// TestConfigValidation covers constructor rejection paths.
func TestConfigValidation(t *testing.T) {
	if _, err := New(nil, Config{NGram: 3, Dir: t.TempDir()}); err == nil {
		t.Fatal("accepted zero dim with nil base")
	}
	if _, err := New(testBase(t, 2), Config{Dim: testDim, NGram: 3}); err == nil {
		t.Fatal("accepted empty snapshot directory")
	}
	if _, err := New(testBase(t, 2), Config{Dim: testDim / 2, NGram: 3, Dir: t.TempDir()}); err == nil {
		t.Fatal("accepted dim mismatch with base")
	}
	if _, err := TrainOffline(nil, nil, Config{Dim: testDim, NGram: 3, Centroids: 2}); err == nil {
		t.Fatal("offline reference accepted multi-centroid mode")
	}
	if _, err := TrainOffline(nil, nil, Config{Dim: testDim, NGram: 3}); err == nil {
		t.Fatal("offline reference accepted an empty fold")
	}
}
