// Package textgen synthesizes the multilingual corpus the reproduction
// trains and tests on. The paper trains each of 21 European-language
// hypervectors on ~1 MB of Wortschatz text and tests on 1,000 Europarl
// sentences per language; those corpora are not redistributable, so this
// package substitutes seeded letter-level Markov models — one per language —
// derived from a common proto-language with controlled per-family and
// per-language divergence.
//
// Why the substitution is faithful: HD language identification consumes
// nothing but letter n-gram statistics (paper §II-A). A second-order Markov
// model with language-specific trigram statistics exercises exactly the same
// pipeline (normalize → trigram encode → bundle → associative search) and
// reproduces the qualitative structure the paper's experiments rest on:
// accuracy grows with dimensionality, degrades gracefully under distance
// error, and languages in the same family are closer than unrelated ones.
package textgen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
)

// Alphabet is the 27-symbol alphabet: 26 lower-case Latin letters + space.
const Alphabet = "abcdefghijklmnopqrstuvwxyz "

// nsym is the alphabet size.
const nsym = 27

// spaceIdx is the index of the space symbol.
const spaceIdx = 26

// Language is a synthetic language: a second-order Markov model over the
// 27-symbol alphabet, tagged with a name and family for reporting.
type Language struct {
	Name   string
	Family string

	// cum[a][b] is the cumulative distribution over the next symbol given
	// the previous two symbols a, b.
	cum [][][]float64
}

// languageSpec names the 21 Europarl languages and their families. The
// family tree induces correlated trigram statistics, mirroring the paper's
// note that "hypervectors within a language family should be closer to each
// other than hypervectors for unrelated languages".
type languageSpec struct{ name, family string }

var specs = [21]languageSpec{
	{"bulgarian", "slavic"},
	{"czech", "slavic"},
	{"danish", "germanic"},
	{"dutch", "germanic"},
	{"english", "germanic"},
	{"estonian", "uralic"},
	{"finnish", "uralic"},
	{"french", "romance"},
	{"german", "germanic"},
	{"greek", "hellenic"},
	{"hungarian", "uralic"},
	{"italian", "romance"},
	{"latvian", "baltic"},
	{"lithuanian", "baltic"},
	{"polish", "slavic"},
	{"portuguese", "romance"},
	{"romanian", "romance"},
	{"slovak", "slavic"},
	{"slovene", "slavic"},
	{"spanish", "romance"},
	{"swedish", "germanic"},
}

// NumLanguages is the number of languages in the catalog (21, as in the
// paper's Europarl evaluation).
const NumLanguages = len(specs)

// Config controls how far apart the synthetic languages are.
type Config struct {
	// Seed determines every random choice; identical seeds give identical
	// languages.
	Seed uint64
	// FamilySigma is the log-normal perturbation shared by languages of the
	// same family.
	FamilySigma float64
	// LanguageSigma is the per-language log-normal perturbation on top of
	// the family's.
	LanguageSigma float64
}

// DefaultConfig gives divergence calibrated against the paper's evaluation:
// with trigram encoding at D = 10,000 the pipeline reaches maximum accuracy
// ≥ 97%, stays at maximum with 1,000 bits of distance error, loses ≈ 4
// percentage points at 3,000 bits, and collapses below 80% at 4,000 bits
// (Fig. 1), while dimensionality reduction degrades accuracy as in
// Table III. Calibration history is recorded in EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{Seed: 2017, FamilySigma: 0.85, LanguageSigma: 1.15}
}

// Catalog builds the 21 synthetic languages.
func Catalog(cfg Config) []*Language {
	if cfg.FamilySigma < 0 || cfg.LanguageSigma < 0 {
		panic("textgen: negative divergence sigma")
	}
	base := protoWeights()
	// One perturbation field per family, deterministic in (seed, family).
	familyField := make(map[string][]float64)
	langs := make([]*Language, 0, NumLanguages)
	for i, spec := range specs {
		ff, ok := familyField[spec.family]
		if !ok {
			ff = gaussianField(cfg.Seed, hashString(spec.family))
			familyField[spec.family] = ff
		}
		lf := gaussianField(cfg.Seed, hashString(spec.name)^0xabcdef)
		w := make([]float64, nsym*nsym*nsym)
		for k := range w {
			w[k] = base[k] * math.Exp(cfg.FamilySigma*ff[k]+cfg.LanguageSigma*lf[k])
		}
		langs = append(langs, newLanguage(spec.name, spec.family, w))
		_ = i
	}
	return langs
}

// hashString is a tiny FNV-1a for deriving per-name sub-seeds.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// gaussianField returns 27³ standard-normal values deterministic in the
// seeds.
func gaussianField(seed, sub uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, sub))
	f := make([]float64, nsym*nsym*nsym)
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	return f
}

// protoWeights builds the shared proto-language trigram weights: a generic
// alternating vowel/consonant structure with word lengths governed by the
// space probabilities. All languages are perturbations of this, so they
// share realistic gross structure (as European languages written in the
// Latin alphabet do) and differ in their trigram statistics.
func protoWeights() []float64 {
	isVowel := func(c int) bool {
		switch byte(Alphabet[c]) {
		case 'a', 'e', 'i', 'o', 'u':
			return true
		}
		return false
	}
	w := make([]float64, nsym*nsym*nsym)
	for a := 0; a < nsym; a++ {
		for b := 0; b < nsym; b++ {
			for c := 0; c < nsym; c++ {
				v := 1.0
				switch {
				case b == spaceIdx && c == spaceIdx:
					v = 0 // no double spaces
				case c == spaceIdx:
					// End a word: likelier after two letters, never twice.
					if a != spaceIdx {
						v = 4.0
					} else {
						v = 0.6
					}
				case b == spaceIdx:
					// Word-initial letter: mild preference for consonants.
					if isVowel(c) {
						v = 2.0
					} else {
						v = 2.5
					}
				case isVowel(b) != isVowel(c):
					// Alternation bonus.
					v = 3.5
				case isVowel(b) && isVowel(c):
					v = 0.8
				default:
					v = 0.6 // consonant clusters are rarer
				}
				w[(a*nsym+b)*nsym+c] = v
			}
		}
	}
	return w
}

// newLanguage normalizes weights into cumulative sampling tables.
func newLanguage(name, family string, w []float64) *Language {
	cum := make([][][]float64, nsym)
	for a := 0; a < nsym; a++ {
		cum[a] = make([][]float64, nsym)
		for b := 0; b < nsym; b++ {
			row := make([]float64, nsym)
			var sum float64
			for c := 0; c < nsym; c++ {
				sum += w[(a*nsym+b)*nsym+c]
			}
			if sum == 0 {
				// Degenerate context (e.g. double space): fall back to a
				// uniform letter distribution excluding space.
				acc := 0.0
				for c := 0; c < nsym; c++ {
					if c != spaceIdx {
						acc += 1.0 / (nsym - 1)
					}
					row[c] = acc
				}
			} else {
				acc := 0.0
				for c := 0; c < nsym; c++ {
					acc += w[(a*nsym+b)*nsym+c] / sum
					row[c] = acc
				}
			}
			row[nsym-1] = 1.0 // guard against rounding
			cum[a][b] = row
		}
	}
	return &Language{Name: name, Family: family, cum: cum}
}

// next samples the symbol following context (a, b).
func (l *Language) next(a, b int, rng *rand.Rand) int {
	row := l.cum[a][b]
	x := rng.Float64()
	for c := 0; c < nsym; c++ {
		if x < row[c] {
			return c
		}
	}
	return nsym - 1
}

// GenerateText produces approximately n characters of running text from the
// language model, deterministic in rng. The text starts at a word boundary.
func (l *Language) GenerateText(n int, rng *rand.Rand) string {
	if n <= 0 {
		return ""
	}
	var sb strings.Builder
	sb.Grow(n)
	a, b := spaceIdx, spaceIdx
	for sb.Len() < n {
		c := l.next(a, b, rng)
		sb.WriteByte(Alphabet[c])
		a, b = b, c
	}
	return sb.String()
}

// GenerateSentence produces one test sentence of the given approximate
// length in characters (ending at a word boundary). The paper's test
// samples are single Europarl sentences.
func (l *Language) GenerateSentence(approxLen int, rng *rand.Rand) string {
	if approxLen < 3 {
		approxLen = 3
	}
	var sb strings.Builder
	sb.Grow(approxLen + 16)
	a, b := spaceIdx, spaceIdx
	for {
		c := l.next(a, b, rng)
		if c == spaceIdx && sb.Len() >= approxLen {
			break
		}
		sb.WriteByte(Alphabet[c])
		a, b = b, c
		if sb.Len() > 4*approxLen { // safety: never loop unbounded
			break
		}
	}
	return strings.TrimSpace(sb.String())
}

// TrigramProb returns the model probability P(c | a, b) for three alphabet
// indices; used by tests to compare model statistics across languages.
func (l *Language) TrigramProb(a, b, c int) float64 {
	if a < 0 || a >= nsym || b < 0 || b >= nsym || c < 0 || c >= nsym {
		panic(fmt.Sprintf("textgen: symbol index out of range (%d,%d,%d)", a, b, c))
	}
	row := l.cum[a][b]
	p := row[c]
	if c > 0 {
		p -= row[c-1]
	}
	if p < 0 {
		p = 0 // clamp float rounding from the cumulative guard
	}
	return p
}

// SymbolIndex maps a rune in the alphabet to its index, or -1.
func SymbolIndex(r rune) int {
	return strings.IndexRune(Alphabet, r)
}
