package textgen

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestCatalogShape(t *testing.T) {
	langs := Catalog(DefaultConfig())
	if len(langs) != 21 {
		t.Fatalf("catalog has %d languages, want 21", len(langs))
	}
	seen := map[string]bool{}
	families := map[string]int{}
	for _, l := range langs {
		if seen[l.Name] {
			t.Errorf("duplicate language %q", l.Name)
		}
		seen[l.Name] = true
		families[l.Family]++
	}
	if families["romance"] != 5 || families["germanic"] != 5 || families["slavic"] != 5 {
		t.Errorf("family sizes wrong: %v", families)
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := Catalog(DefaultConfig())
	b := Catalog(DefaultConfig())
	rngA := rand.New(rand.NewPCG(1, 2))
	rngB := rand.New(rand.NewPCG(1, 2))
	for i := range a {
		ta := a[i].GenerateText(500, rngA)
		tb := b[i].GenerateText(500, rngB)
		if ta != tb {
			t.Fatalf("language %s text not deterministic", a[i].Name)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg2 := DefaultConfig()
	cfg2.Seed++
	a := Catalog(DefaultConfig())[0]
	b := Catalog(cfg2)[0]
	ra := rand.New(rand.NewPCG(9, 9))
	rb := rand.New(rand.NewPCG(9, 9))
	if a.GenerateText(2000, ra) == b.GenerateText(2000, rb) {
		t.Fatal("different catalog seeds produced identical text")
	}
}

func TestGeneratedTextWellFormed(t *testing.T) {
	langs := Catalog(DefaultConfig())
	rng := rand.New(rand.NewPCG(5, 5))
	for _, l := range langs[:5] {
		text := l.GenerateText(5000, rng)
		if len(text) < 5000 {
			t.Fatalf("%s: text too short: %d", l.Name, len(text))
		}
		if strings.Contains(text, "  ") {
			t.Errorf("%s: double space in generated text", l.Name)
		}
		for _, r := range text {
			if SymbolIndex(r) < 0 {
				t.Fatalf("%s: rune %q outside alphabet", l.Name, r)
			}
		}
		// Spaces must occur (words exist) but not dominate.
		frac := float64(strings.Count(text, " ")) / float64(len(text))
		if frac < 0.05 || frac > 0.4 {
			t.Errorf("%s: space fraction %.3f implausible", l.Name, frac)
		}
	}
}

func TestSentences(t *testing.T) {
	l := Catalog(DefaultConfig())[4] // english
	rng := rand.New(rand.NewPCG(6, 6))
	for i := 0; i < 50; i++ {
		s := l.GenerateSentence(80, rng)
		if len(s) < 40 || len(s) > 400 {
			t.Fatalf("sentence %d has length %d, want near 80", i, len(s))
		}
		if strings.HasPrefix(s, " ") || strings.HasSuffix(s, " ") {
			t.Error("sentence not trimmed")
		}
	}
	if s := l.GenerateSentence(0, rng); len(s) == 0 {
		t.Error("degenerate target length produced empty sentence")
	}
}

func TestTrigramProbsNormalized(t *testing.T) {
	l := Catalog(DefaultConfig())[0]
	for a := 0; a < nsym; a++ {
		for b := 0; b < nsym; b++ {
			sum := 0.0
			for c := 0; c < nsym; c++ {
				p := l.TrigramProb(a, b, c)
				if p < -1e-12 {
					t.Fatalf("negative probability at (%d,%d,%d): %v", a, b, c, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("context (%d,%d) sums to %v", a, b, sum)
			}
		}
	}
}

func TestNoDoubleSpaceProbability(t *testing.T) {
	l := Catalog(DefaultConfig())[0]
	if p := l.TrigramProb(0, spaceIdx, spaceIdx); p != 0 {
		t.Fatalf("P(space|.,space) = %v, want 0", p)
	}
}

// trigramDivergence computes an L1 distance between two languages' trigram
// tables, as a proxy for linguistic distance.
func trigramDivergence(a, b *Language) float64 {
	var d float64
	for i := 0; i < nsym; i++ {
		for j := 0; j < nsym; j++ {
			for k := 0; k < nsym; k++ {
				d += math.Abs(a.TrigramProb(i, j, k) - b.TrigramProb(i, j, k))
			}
		}
	}
	return d
}

func TestFamilyStructure(t *testing.T) {
	// Same-family languages must on average be closer (in trigram statistics)
	// than cross-family pairs — the structure the paper observes in learned
	// language hypervectors.
	langs := Catalog(DefaultConfig())
	var sameSum, crossSum float64
	var sameN, crossN int
	for i := 0; i < len(langs); i++ {
		for j := i + 1; j < len(langs); j++ {
			d := trigramDivergence(langs[i], langs[j])
			if langs[i].Family == langs[j].Family {
				sameSum += d
				sameN++
			} else {
				crossSum += d
				crossN++
			}
		}
	}
	same := sameSum / float64(sameN)
	cross := crossSum / float64(crossN)
	if same >= cross {
		t.Fatalf("same-family divergence %.2f not below cross-family %.2f", same, cross)
	}
}

func TestSymbolIndex(t *testing.T) {
	if SymbolIndex('a') != 0 || SymbolIndex('z') != 25 || SymbolIndex(' ') != 26 {
		t.Error("alphabet indices wrong")
	}
	if SymbolIndex('A') != -1 || SymbolIndex('é') != -1 {
		t.Error("out-of-alphabet runes should map to -1")
	}
}

func TestTrigramProbPanics(t *testing.T) {
	l := Catalog(DefaultConfig())[0]
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range symbol")
		}
	}()
	l.TrigramProb(27, 0, 0)
}

func TestConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for negative sigma")
		}
	}()
	Catalog(Config{Seed: 1, FamilySigma: -1})
}
