package hdam

// Integration test: the paper's full pipeline at reduced scale, pushed
// through every searcher this repository implements — software references,
// the three functional hardware simulators and the three structural
// circuit-level simulators — asserting they agree wherever their physics
// says they must.

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"hdam/internal/assoc"
)

func TestIntegrationAllSearchersAgreeOnLanguageTask(t *testing.T) {
	langs := Languages()[:8]
	p := DefaultLanguageParams()
	p.TrainChars = 25_000
	p.TestPerLang = 6
	tr, err := TrainLanguages(langs, p)
	if err != nil {
		t.Fatal(err)
	}
	ts := MakeTestSet(langs, p)
	ts.Encode(tr)
	c := tr.Memory.Classes()

	exact := NewExactSearcher(tr.Memory)

	dh, err := NewDHAM(DHAMConfig{D: p.Dim, C: c}, tr.Memory)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDHAMDatapath(DHAMConfig{D: p.Dim, C: c}, tr.Memory)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := NewRHAM(RHAMConfig{D: p.Dim, C: c, VOSErrRate: 1e-12}, tr.Memory)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRHAMCircuit(RHAMConfig{D: p.Dim, C: c}, tr.Memory, 0)
	if err != nil {
		t.Fatal(err)
	}
	ah, err := NewAHAM(AHAMConfig{D: p.Dim, C: c}, tr.Memory)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := NewAHAMCircuit(AHAMConfig{D: p.Dim, C: c}, tr.Memory, 9)
	if err != nil {
		t.Fatal(err)
	}

	// Exact-equivalence group: with no approximation knobs on, the digital
	// designs and the noiseless resistive design must match the ideal
	// search result for result index AND observed distance.
	for i, q := range ts.Queries {
		want := exact.Search(q)
		for _, s := range []Searcher{dh, dp, rh} {
			if got := s.Search(q); got != want {
				t.Fatalf("query %d: %s returned %+v, exact %+v", i, s.Name(), got, want)
			}
		}
		// The R-HAM circuit path reads every block through physical sense
		// amplifiers whose nominal input noise very occasionally flips one
		// block by ±1 across the ~2,500 reads per row: the winner must
		// match and the observed distance stay within a few bits.
		got := rc.Search(q)
		if got.Index != want.Index {
			t.Fatalf("query %d: %s winner %d, exact %d", i, rc.Name(), got.Index, want.Index)
		}
		if diff := got.Distance - want.Distance; diff < -5 || diff > 5 {
			t.Fatalf("query %d: %s distance %d, exact %d", i, rc.Name(), got.Distance, want.Distance)
		}
	}

	// Accuracy group: the analog designs quantize near-ties, so only the
	// classification quality is asserted. Margins here are far above Δ, so
	// they should match the exact accuracy.
	baseline := Evaluate(exact, tr.Memory, ts).Accuracy()
	for _, s := range []Searcher{ah, ac} {
		acc := Evaluate(s, tr.Memory, ts).Accuracy()
		if acc < baseline-0.02 {
			t.Errorf("%s accuracy %.3f below exact %.3f", s.Name(), acc, baseline)
		}
	}

	// Software robustness group sanity: moderate injected error keeps the
	// task solvable, destructive error does not.
	rng := rand.New(rand.NewPCG(1, 1))
	mild := Evaluate(assoc.NewNoisy(tr.Memory, 1000, rng), tr.Memory, ts).Accuracy()
	if mild < baseline-0.1 {
		t.Errorf("1,000-bit error accuracy %.3f far below baseline %.3f", mild, baseline)
	}
	harsh := Evaluate(assoc.NewNoisy(tr.Memory, 4800, rng), tr.Memory, ts).Accuracy()
	if harsh > baseline-0.2 {
		t.Errorf("4,800-bit error accuracy %.3f did not collapse (baseline %.3f)", harsh, baseline)
	}
}

func TestIntegrationPersistencePreservesBehavior(t *testing.T) {
	langs := Languages()[:4]
	p := DefaultLanguageParams()
	p.TrainChars = 10_000
	p.TestPerLang = 4
	tr, err := TrainLanguages(langs, p)
	if err != nil {
		t.Fatal(err)
	}
	ts := MakeTestSet(langs, p)
	ts.Encode(tr)

	var buf bytes.Buffer
	if err := SaveMemory(&buf, tr.Memory); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMemory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := NewExactSearcher(tr.Memory)
	rest := NewExactSearcher(loaded)
	for i, q := range ts.Queries {
		if orig.Search(q) != rest.Search(q) {
			t.Fatalf("query %d: loaded memory classifies differently", i)
		}
	}
}
