// Quickstart: the smallest complete HDAM program.
//
// It shows the three HD operations (bind, bundle, permute), builds a tiny
// two-class associative memory from raw text, and classifies a query with
// each of the paper's three hardware designs — demonstrating that the
// digital, resistive and analog searches agree when class margins are wide.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"hdam"
)

func main() {
	// --- 1. Hypervector arithmetic -------------------------------------
	rng := rand.New(rand.NewPCG(7, 7))
	a := hdam.RandomVector(hdam.Dim, rng)
	b := hdam.RandomVector(hdam.Dim, rng)

	fmt.Println("== HD arithmetic (D = 10,000) ==")
	fmt.Printf("δ(A, B) unrelated vectors:     %5d (≈ D/2)\n", hdam.Hamming(a, b))
	fmt.Printf("δ(A⊕B, A) binding decorrelates:%5d (≈ D/2)\n", hdam.Hamming(hdam.Bind(a, b), a))
	fmt.Printf("δ((A⊕B)⊕B, A) and inverts:     %5d (exact recovery)\n",
		hdam.Hamming(hdam.Bind(hdam.Bind(a, b), b), a))
	c := hdam.RandomVector(hdam.Dim, rng)
	bundle := hdam.Bundle(1, a, b, c)
	fmt.Printf("δ([A+B+C], A) bundling keeps:  %5d (< D/2: similar)\n", hdam.Hamming(bundle, a))
	fmt.Printf("δ(ρ(A), A) permutation rotates:%5d (≈ D/2)\n", hdam.Hamming(hdam.Permute(a, 1), a))

	// --- 2. Encode text into class hypervectors ------------------------
	im := hdam.NewItemMemory(hdam.Dim, 42)
	im.Preload(hdam.LatinAlphabet)
	enc := hdam.NewEncoder(im, 3) // trigrams, as in the paper

	catText := "cats purr and chase mice around the house they nap in sunbeams and knead blankets"
	dogText := "dogs bark and fetch sticks in the park they wag their tails and chase the mailman"
	catHV, _ := enc.EncodeText(catText, 1)
	dogHV, _ := enc.EncodeText(dogText, 2)

	mem, err := hdam.NewMemory([]*hdam.Vector{catHV, dogHV}, []string{"cat", "dog"})
	if err != nil {
		log.Fatal(err)
	}

	// --- 3. Search with each hardware design ---------------------------
	query := "the dog wagged its tail and fetched the stick"
	q, _ := enc.EncodeText(query, 3)

	dh, err := hdam.NewDHAM(hdam.DHAMConfig{D: hdam.Dim, C: 2, SampledD: 9000}, mem)
	if err != nil {
		log.Fatal(err)
	}
	rh, err := hdam.NewRHAM(hdam.RHAMConfig{D: hdam.Dim, C: 2, BlocksOff: 250, VOSBlocks: 1000}, mem)
	if err != nil {
		log.Fatal(err)
	}
	ah, err := hdam.NewAHAM(hdam.AHAMConfig{D: hdam.Dim, C: 2}, mem)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n== Classifying %q ==\n", query)
	for _, s := range []hdam.Searcher{dh, rh, ah} {
		r := s.Search(q)
		fmt.Printf("%-40s → %-3s (observed distance %d)\n", s.Name(), mem.Label(r.Index), r.Distance)
	}

	// --- 4. What does each design cost? --------------------------------
	fmt.Println("\n== Cost at the paper's reference point (D=10,000, C=100) ==")
	for _, pair := range []struct {
		name string
		cost hdam.Cost
	}{
		{"D-HAM", mustCost(hdam.DHAMConfig{D: 10000, C: 100}.Cost())},
		{"R-HAM", mustCost(hdam.RHAMConfig{D: 10000, C: 100}.Cost())},
		{"A-HAM", mustCost(hdam.AHAMConfig{D: 10000, C: 100}.Cost())},
	} {
		fmt.Printf("%-6s %s\n", pair.name, pair.cost)
	}
}

func mustCost(c hdam.Cost, err error) hdam.Cost {
	if err != nil {
		log.Fatal(err)
	}
	return c
}
