// Fault-tolerant scatter-gather serving: the class matrix partitioned
// across a fleet of replica engines, each query scattered to one replica
// per partition and the partial distance reductions gathered back into an
// answer.
//
// The demo trains the language recognizer, serves a stream of sentences
// through a four-replica fleet, then kills one replica mid-stream: answers
// keep flowing, now flagged Degraded with the surviving coverage fraction
// (a lost word-range partition is an erasure — the answer becomes the exact
// d-sampled classification over the surviving bits, with the confidence
// margin widened by the d-sampling certificate). Restarting the replica
// restores full-coverage answers bit-identical to a single-engine scan.
//
// Run:
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"hdam"
)

func main() {
	langs := hdam.Languages()
	p := hdam.DefaultLanguageParams()
	p.Dim = 4096
	p.TrainChars = 30_000
	p.TestPerLang = 1
	fmt.Printf("training %d languages at D=%d...\n", len(langs), p.Dim)
	tr, err := hdam.TrainLanguages(langs, p)
	check(err)

	fl, err := hdam.NewFleet(tr, hdam.FleetConfig{Replicas: 4, Scheme: hdam.FleetByWords, Seed: p.Seed})
	check(err)
	defer fl.Close()
	fmt.Printf("fleet up: %d replicas, one word-range partition each\n\n", fl.Replicas())

	// A stream of sentences with known languages.
	rng := rand.New(rand.NewPCG(p.Seed, 0xf1ee7))
	type sample struct{ text, want string }
	var stream []sample
	for round := 0; round < 4; round++ {
		for _, l := range langs[:6] {
			stream = append(stream, sample{l.GenerateSentence(120, rng), l.Name})
		}
	}

	classify := func(from, to int) {
		for i := from; i < to; i++ {
			ans, err := fl.Ask(context.Background(), stream[i].text)
			check(err)
			mark := "✗"
			if ans.Label == stream[i].want {
				mark = "✓"
			}
			if ans.Degraded {
				fmt.Printf("%s %-11s DEGRADED coverage %.2f (%d/%d bits, margin %d widened to %d)\n",
					mark, ans.Label, ans.Coverage, ans.CoveredBits, p.Dim, ans.Margin, ans.WidenedMargin)
			} else {
				fmt.Printf("%s %-11s exact (full coverage, margin %d)\n", mark, ans.Label, ans.Margin)
			}
		}
	}

	third := len(stream) / 3
	fmt.Println("-- all replicas healthy --")
	classify(0, third)

	fmt.Println("\n-- killing replica 2 mid-stream --")
	check(fl.StopReplica(2))
	classify(third, 2*third)

	fmt.Println("\n-- restarting replica 2 --")
	check(fl.StartReplica(2))
	classify(2*third, len(stream))

	st := fl.Stats()
	fmt.Printf("\nfleet stats: %d answered, %d degraded (%.1f%%), %d erasures\n",
		st.Answered, st.Degraded, 100*st.DegradedRate(), st.Erasures)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
