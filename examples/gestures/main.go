// Gesture recognition: the paper's other application domain (§II cites
// EMG-based hand-gesture recognition [7] as a further consumer of the same
// associative memory).
//
// Synthetic 4-channel EMG windows are encoded spatiotemporally — channel
// roles bound to amplitude levels, consecutive samples bound through
// permutation — and classified by each HAM design. The point: the hardware
// never changes between applications; only the class hypervectors do.
//
// Run:
//
//	go run ./examples/gestures
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"hdam"
	"hdam/internal/assoc"
	"hdam/internal/emg"
)

func main() {
	rng := rand.New(rand.NewPCG(11, 11))
	gen := emg.Generator{}
	enc := emg.NewEncoder(hdam.Dim, 8, 3, 7)

	fmt.Println("gesture activation profiles (per-channel means):")
	for g := 0; g < emg.NumGestures; g++ {
		fmt.Printf("  %-12s %v\n", emg.Gesture(g), emg.Profile(emg.Gesture(g)))
	}

	train := gen.Dataset(12, 32, rng)
	test := gen.Dataset(20, 32, rng)
	fmt.Printf("\ntraining on %d windows, testing on %d...\n", len(train), len(test))
	mem, err := enc.Train(train)
	if err != nil {
		log.Fatal(err)
	}
	min1, _ := mem.MinClassSeparation()
	fmt.Printf("gesture prototype separation: %d bits minimum\n\n", min1)

	dh, err := hdam.NewDHAM(hdam.DHAMConfig{D: hdam.Dim, C: emg.NumGestures, SampledD: 9000}, mem)
	if err != nil {
		log.Fatal(err)
	}
	rh, err := hdam.NewRHAM(hdam.RHAMConfig{D: hdam.Dim, C: emg.NumGestures, BlocksOff: 250, VOSBlocks: 1000}, mem)
	if err != nil {
		log.Fatal(err)
	}
	ah, err := hdam.NewAHAM(hdam.AHAMConfig{D: hdam.Dim, C: emg.NumGestures}, mem)
	if err != nil {
		log.Fatal(err)
	}

	var lastConfusion [][]int
	for _, s := range []hdam.Searcher{assoc.NewExact(mem), dh, rh, ah} {
		acc, conf := enc.Evaluate(s, test)
		fmt.Printf("%-45s accuracy %.1f%%\n", s.Name(), 100*acc)
		lastConfusion = conf
	}

	fmt.Println("\nconfusion matrix (A-HAM; rows = truth, cols = predicted):")
	labels := emg.GestureLabels()
	fmt.Printf("%14s", "")
	for _, l := range labels {
		fmt.Printf("%12s", l)
	}
	fmt.Println()
	for i, row := range lastConfusion {
		fmt.Printf("%14s", labels[i])
		for _, n := range row {
			fmt.Printf("%12d", n)
		}
		fmt.Println()
	}
}
