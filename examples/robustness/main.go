// Robustness: the paper's Fig. 1 / §II-B claim, live.
//
// HD representations are holographic with i.i.d. components, so a HAM
// tolerates large errors in its distance computation. This example trains a
// reduced model, then degrades the search three ways — random distance
// errors (Fig. 1), dimension sampling (§III-A1) and comparator quantization
// (A-HAM's LTA, §III-D2) — and prints accuracy against severity. It closes
// with the fault-injection subsystem: seeded storage and query-path faults
// applied to the array, and the resilient escalation chain recovering what
// the raw search loses.
//
// Run:
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"hdam"
)

func main() {
	langs := hdam.Languages()
	p := hdam.DefaultLanguageParams()
	p.TrainChars = 120_000
	p.TestPerLang = 40

	fmt.Printf("training (D=%d, %d langs)...\n", p.Dim, len(langs))
	start := time.Now()
	tr, err := hdam.TrainLanguages(langs, p)
	if err != nil {
		log.Fatal(err)
	}
	ts := hdam.MakeTestSet(langs, p)
	ts.Encode(tr)
	fmt.Printf("ready in %s\n\n", time.Since(start).Round(time.Millisecond))

	base := hdam.Evaluate(hdam.NewExactSearcher(tr.Memory), tr.Memory, ts)
	fmt.Printf("baseline (exact search): %s\n\n", base)

	rng := rand.New(rand.NewPCG(9, 9))

	fmt.Println("-- errors injected into every distance computation (Fig. 1) --")
	for _, e := range []int{0, 1000, 2000, 3000, 4000, 4500} {
		rep := hdam.Evaluate(hdam.NewNoisySearcher(tr.Memory, e, rng), tr.Memory, ts)
		fmt.Printf("  %4d error bits → %s\n", e, rep)
	}

	fmt.Println("\n-- structured sampling: distance over d < D dimensions (§III-A1) --")
	for _, d := range []int{10000, 9000, 7000, 5000, 2500, 1000} {
		dh, err := hdam.NewDHAM(hdam.DHAMConfig{D: p.Dim, C: len(langs), SampledD: d}, tr.Memory)
		if err != nil {
			log.Fatal(err)
		}
		rep := hdam.Evaluate(dh, tr.Memory, ts)
		fmt.Printf("  d = %5d → %s\n", d, rep)
	}

	fmt.Println("\n-- LTA resolution: winners within Δ are indistinguishable (§III-D2) --")
	for _, corner := range []struct {
		label string
		v     hdam.Variation
	}{
		{"nominal", hdam.Variation{}},
		{"25% process 3σ", hdam.Variation{Process3Sigma: 0.25}},
		{"35% process 3σ", hdam.Variation{Process3Sigma: 0.35}},
		{"35% process + 10% supply droop", hdam.Variation{Process3Sigma: 0.35, SupplyDrop: 0.10}},
	} {
		ah, err := hdam.NewAHAM(hdam.AHAMConfig{D: p.Dim, C: len(langs), Variation: corner.v}, tr.Memory)
		if err != nil {
			log.Fatal(err)
		}
		rep := hdam.Evaluate(ah, tr.Memory, ts)
		fmt.Printf("  %-32s Δ=%4d → %s\n", corner.label, ah.MinDetect(), rep)
	}
	fmt.Println("\n-- injected faults vs. the resilient escalation chain (internal/fault) --")
	for _, rate := range []float64{0.05, 0.10, 0.20, 0.30} {
		flips := int(rate * float64(p.Dim))
		qp, err := hdam.NewQueryPathFault(p.Dim, flips/2, 7)
		if err != nil {
			log.Fatal(err)
		}
		// Storage faults rebuild the array: stuck cells plus transient flips.
		fmem, err := hdam.FaultMemory(tr.Memory,
			&hdam.StuckAtFault{Rate: rate / 2, Seed: 7},
			&hdam.TransientFault{PerClass: flips, Seed: 7},
		)
		if err != nil {
			log.Fatal(err)
		}
		// The raw view of the faulty device: exact search over the faulted
		// array behind a broken query path.
		raw, err := hdam.WrapFaulty(hdam.NewExactSearcher(fmem), qp)
		if err != nil {
			log.Fatal(err)
		}
		// The resilient view: the same faulty device as first stage, backed
		// by the exact search over the protected master copy.
		chain, err := hdam.NewResilient([]hdam.ResilientStage{
			{Searcher: raw},
			{Searcher: hdam.NewExactSearcher(tr.Memory)},
		}, hdam.ResilientConfig{MinMargin: 16 + flips/8})
		if err != nil {
			log.Fatal(err)
		}
		rawRep := hdam.Evaluate(raw, tr.Memory, ts)
		resRep := hdam.Evaluate(chain, tr.Memory, ts)
		st := chain.Stats()
		fmt.Printf("  %4.0f%% faulted → raw %s | resilient %s (%.0f%% escalated)\n",
			100*rate, rawRep, resRep,
			100*float64(st[1].Answered)/float64(chain.Searches()))
	}

	fmt.Println("\npaper: accuracy holds to 1,000 error bits, moderate at 3,000, collapses at 4,000;")
	fmt.Println("       A-HAM at 35% process variation: 94.3% (nominal) … 89.2% (−10% supply)")
}
