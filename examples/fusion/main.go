// Sensor fusion: the multimodal prediction application the paper cites
// ([8], [9]) — predicting the next event of a target stream by fusing
// several parallel sensor streams into context hypervectors and recalling
// the nearest next-symbol prototype from the associative memory.
//
// The demo compares a predictor that watches the target stream alone
// against one that fuses the auxiliary streams (which carry noisy leading
// indicators), then runs the fused predictor through the A-HAM simulator.
//
// Run:
//
//	go run ./examples/fusion
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"hdam"
	"hdam/internal/assoc"
	"hdam/internal/fusion"
)

func main() {
	rng := rand.New(rand.NewPCG(21, 21))
	process := fusion.DefaultProcess()
	process.SelfWeight = 0.6 // 40% of transitions need the auxiliary streams

	train := process.Generate(2000, rng)
	test := process.Generate(500, rng)
	fmt.Printf("synthetic process: %d streams × %d symbols, %d train / %d test events\n",
		process.Streams, process.Symbols, len(train), len(test))

	// Target-only predictor.
	solo, err := fusion.New(fusion.Config{
		Dim: hdam.Dim, Streams: 1, Symbols: process.Symbols, History: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	strip := func(seq []fusion.Event) []fusion.Event {
		out := make([]fusion.Event, len(seq))
		for i, e := range seq {
			out[i] = fusion.Event{e[0]}
		}
		return out
	}
	solo.ObserveSequence(strip(train))
	soloMem, err := solo.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	soloAcc := solo.Accuracy(assoc.NewExact(soloMem), strip(test))

	// Fused predictor.
	fused, err := fusion.New(fusion.Config{
		Dim: hdam.Dim, Streams: process.Streams, Symbols: process.Symbols, History: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fused.ObserveSequence(train)
	fusedMem, err := fused.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	fusedAcc := fused.Accuracy(assoc.NewExact(fusedMem), test)

	fmt.Printf("\nnext-symbol prediction accuracy (chance = %.0f%%):\n", 100.0/float64(process.Symbols))
	fmt.Printf("  target stream only:      %.1f%%\n", 100*soloAcc)
	fmt.Printf("  fused with auxiliaries:  %.1f%%\n", 100*fusedAcc)

	// The same prediction through the analog hardware simulator.
	ah, err := hdam.NewAHAM(hdam.AHAMConfig{D: hdam.Dim, C: process.Symbols}, fusedMem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fused through A-HAM:     %.1f%% (%s)\n",
		100*fused.Accuracy(ah, test), ah.Name())

	// A few live predictions.
	fmt.Println("\nsample predictions (context → predicted | actual):")
	for t := 2; t < 8; t++ {
		got := fused.Predict(ah, test[t-2:t])
		fmt.Printf("  %v %v → %d | %d\n", test[t-2], test[t-1], got, test[t][0])
	}
}
