// Design-space exploration: the paper's §IV-C/§IV-D study as a library.
//
// Sweeps dimensionality and class count through the calibrated cost models
// of the three HAM designs and prints energy, delay, EDP and area — the raw
// material of the paper's Figs. 9, 10 and 12 — plus the approximation
// tradeoff: how each design converts a distance-error budget into EDP.
//
// Run:
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"

	"hdam"
)

func main() {
	fmt.Println("== Scaling dimensionality (C = 21, Fig. 9) ==")
	fmt.Printf("%-7s %-7s %14s %12s %16s\n", "D", "design", "energy (pJ)", "delay (ns)", "EDP (pJ·ns)")
	for _, d := range []int{512, 1000, 2000, 4000, 10000} {
		printRow(fmt.Sprint(d), hdam.DHAMConfig{D: d, C: 21}, hdam.RHAMConfig{D: d, C: 21}, hdam.AHAMConfig{D: d, C: 21})
	}

	fmt.Println("\n== Scaling classes (D = 10,000, Fig. 10) ==")
	fmt.Printf("%-7s %-7s %14s %12s %16s\n", "C", "design", "energy (pJ)", "delay (ns)", "EDP (pJ·ns)")
	for _, c := range []int{6, 12, 25, 50, 100} {
		printRow(fmt.Sprint(c), hdam.DHAMConfig{D: 10000, C: c}, hdam.RHAMConfig{D: 10000, C: c}, hdam.AHAMConfig{D: 10000, C: c})
	}

	fmt.Println("\n== Spending a distance-error budget (D=10,000, C=100, Fig. 11) ==")
	fmt.Printf("%-10s %20s %20s %20s\n", "budget", "D-HAM EDP", "R-HAM vs D-HAM", "A-HAM vs D-HAM")
	for _, e := range []int{0, 1000, 2000, 3000, 4000} {
		dCfg, err := (hdam.DHAMConfig{D: 10000, C: 100}).WithErrorBudget(e)
		check(err)
		rCfg, err := (hdam.RHAMConfig{D: 10000, C: 100}).WithErrorBudget(e)
		check(err)
		dCost, err := dCfg.Cost()
		check(err)
		rCost, err := rCfg.Cost()
		check(err)
		// A-HAM spends the budget on LTA bit-width (14 bits at the maximum
		// accuracy budget, 11 at the moderate one).
		bits := 14
		if e >= 3000 {
			bits = 11
		} else if e >= 2000 {
			bits = 12
		}
		aCost, err := (hdam.AHAMConfig{D: 10000, C: 100, Bits: bits}).Cost()
		check(err)
		fmt.Printf("%-10d %20s %19.1f× %19.0f×\n",
			e, dCost.EDP(),
			float64(dCost.EDP())/float64(rCost.EDP()),
			float64(dCost.EDP())/float64(aCost.EDP()))
	}
	fmt.Println("\npaper anchors: R-HAM 7.3×/9.6× and A-HAM 746×/1347× at the 1,000/3,000-bit budgets")
}

func printRow(x string, dc hdam.DHAMConfig, rc hdam.RHAMConfig, ac hdam.AHAMConfig) {
	d, err := dc.Cost()
	check(err)
	r, err := rc.Cost()
	check(err)
	a, err := ac.Cost()
	check(err)
	for _, row := range []struct {
		name string
		c    hdam.Cost
	}{{"D-HAM", d}, {"R-HAM", r}, {"A-HAM", a}} {
		fmt.Printf("%-7s %-7s %14.1f %12.2f %16.1f\n",
			x, row.name, float64(row.c.Energy), float64(row.c.Delay), float64(row.c.EDP()))
		x = ""
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
