// Topic classification: the paper's §II-A2 observation that "the
// aforementioned algorithm can be reused to perform other tasks such as
// classification of news articles by topic with similar success rates".
//
// This example builds topic prototypes from word-level seed texts (sports,
// finance, weather, cooking), encodes unseen snippets with the same trigram
// encoder and classifies them through an A-HAM functional simulator —
// no retraining of the architecture, only different class hypervectors.
//
// Run:
//
//	go run ./examples/topics
package main

import (
	"fmt"
	"log"
	"strings"

	"hdam"
)

// Seed documents per topic: small but distinctive vocabulary. In a real
// deployment these would be large document collections, exactly as the
// language application uses megabytes of text.
var topics = map[string][]string{
	"sports": {
		"the striker scored a goal in the final minute of the match",
		"the team won the championship after a penalty shootout",
		"the coach praised the defenders and the goalkeeper after the game",
		"fans cheered as the midfielder dribbled past three players",
		"the tournament bracket sets the semifinal against the league leaders",
	},
	"finance": {
		"the stock market rallied as interest rates held steady",
		"investors moved capital into bonds and dividend shares",
		"the bank reported quarterly earnings above analyst forecasts",
		"inflation figures pushed the currency to a monthly low",
		"the fund manages assets across equities and commodities",
		"bond yields rose while the equity index traded sideways",
		"traders priced in a rate cut after the treasury auction",
	},
	"weather": {
		"a cold front brings heavy rain and gusty winds tonight",
		"sunny skies with mild temperatures expected through the weekend",
		"a storm warning was issued for coastal regions until morning",
		"humidity rises ahead of scattered afternoon thunderstorms",
		"snow accumulations of several inches are forecast for the hills",
	},
	"cooking": {
		"simmer the sauce with garlic basil and crushed tomatoes",
		"knead the dough and let it rise until doubled in size",
		"season the roast with rosemary salt and black pepper",
		"whisk the eggs with sugar until the mixture turns pale",
		"saute the onions in butter before adding the sliced mushrooms",
		"melt the butter and fold the flour into the batter gently",
		"bake the loaf until the crust turns golden and crisp",
	},
}

var queries = []struct {
	text, want string
}{
	{"the goalkeeper saved the penalty and the fans went wild", "sports"},
	{"bond yields fell while the equity index closed higher", "finance"},
	{"expect drizzle in the morning and clear skies by evening", "weather"},
	{"stir the risotto and add warm broth one ladle at a time", "cooking"},
	{"the league announced the semifinal schedule for the cup", "sports"},
	{"the quarterly report beat forecasts lifting the shares", "finance"},
	{"gusty winds and hail are likely during the storm tonight", "weather"},
	{"brown the butter then fold in the flour and the eggs", "cooking"},
}

func main() {
	im := hdam.NewItemMemory(hdam.Dim, 2024)
	im.Preload(hdam.LatinAlphabet)
	enc := hdam.NewEncoder(im, 3)

	// One accumulator per topic: bundle the trigrams of all seed docs into
	// a single prototype hypervector — identical to training a language.
	var labels []string
	var classes []*hdam.Vector
	for _, topic := range []string{"sports", "finance", "weather", "cooking"} {
		acc := hdam.NewAccumulator(hdam.Dim, uint64(len(labels)))
		joined := strings.Join(topics[topic], " ")
		if n := enc.AccumulateText(acc, joined); n == 0 {
			log.Fatalf("topic %s produced no n-grams", topic)
		}
		classes = append(classes, acc.Majority())
		labels = append(labels, topic)
	}
	mem, err := hdam.NewMemory(classes, labels)
	if err != nil {
		log.Fatal(err)
	}
	ah, err := hdam.NewAHAM(hdam.AHAMConfig{D: hdam.Dim, C: len(labels)}, mem)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("topic prototypes stored: %v (Δ=%d)\n\n", labels, ah.MinDetect())
	correct := 0
	for i, q := range queries {
		qv, _ := enc.EncodeText(q.text, uint64(100+i))
		got := mem.Label(ah.Search(qv).Index)
		mark := "✗"
		if got == q.want {
			mark = "✓"
			correct++
		}
		fmt.Printf("%s %-8s %q\n", mark, got, q.text)
	}
	fmt.Printf("\n%d/%d snippets classified correctly\n", correct, len(queries))
}
