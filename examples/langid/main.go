// Language identification: the paper's headline application (§II-A) at a
// laptop-friendly scale.
//
// Trains one 10,000-dimensional hypervector per language on synthetic
// corpora (substituting for Wortschatz; see DESIGN.md §1), then classifies
// unseen test sentences with the ideal search and with each hardware
// design's functional simulator, reporting microaveraged accuracy and the
// most confused language pairs.
//
// Run:
//
//	go run ./examples/langid
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"hdam"
)

func main() {
	langs := hdam.Languages()
	p := hdam.DefaultLanguageParams()
	p.TrainChars = 150_000 // reduced from the paper's ~1 MB for a fast demo
	p.TestPerLang = 50

	fmt.Printf("training %d language hypervectors (D=%d, %d chars each)...\n",
		len(langs), p.Dim, p.TrainChars)
	start := time.Now()
	tr, err := hdam.TrainLanguages(langs, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %s\n", time.Since(start).Round(time.Millisecond))

	min1, min2 := tr.Memory.MinClassSeparation()
	fmt.Printf("learned hypervector separation: min %d, next %d bits (paper reports 22 and 34)\n\n",
		min1, min2)

	ts := hdam.MakeTestSet(langs, p)
	ts.Encode(tr)

	c := tr.Memory.Classes()
	dh, err := hdam.NewDHAM(hdam.DHAMConfig{D: p.Dim, C: c, SampledD: 9000}, tr.Memory)
	if err != nil {
		log.Fatal(err)
	}
	rh, err := hdam.NewRHAM(hdam.RHAMConfig{D: p.Dim, C: c, BlocksOff: 250, VOSBlocks: 1000}, tr.Memory)
	if err != nil {
		log.Fatal(err)
	}
	ah, err := hdam.NewAHAM(hdam.AHAMConfig{D: p.Dim, C: c}, tr.Memory)
	if err != nil {
		log.Fatal(err)
	}

	var lastReport hdam.EvalReport
	for _, s := range []hdam.Searcher{hdam.NewExactSearcher(tr.Memory), dh, rh, ah} {
		rep := hdam.Evaluate(s, tr.Memory, ts)
		fmt.Printf("%-55s accuracy %s\n", s.Name(), rep)
		lastReport = rep
	}

	// Most confused pairs from the last (A-HAM) run.
	type confusion struct {
		truth, pred string
		count       int
	}
	var pairs []confusion
	for i, row := range lastReport.Confusion {
		for j, n := range row {
			if i != j && n > 0 {
				pairs = append(pairs, confusion{lastReport.Labels[i], lastReport.Labels[j], n})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].count > pairs[b].count })
	if len(pairs) > 0 {
		fmt.Println("\nmost confused language pairs (A-HAM run):")
		for i, pr := range pairs {
			if i == 5 {
				break
			}
			fmt.Printf("  %-11s mistaken for %-11s ×%d\n", pr.truth, pr.pred, pr.count)
		}
	} else {
		fmt.Println("\nno confusions at this scale")
	}
}
