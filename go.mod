module hdam

go 1.22
