package hdam

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// TestFacadeQuickstart exercises the doc.go quick-start end to end: encode
// two class texts, store them, classify a query with each hardware design.
func TestFacadeQuickstart(t *testing.T) {
	im := NewItemMemory(Dim, 42)
	im.Preload(LatinAlphabet)
	enc := NewEncoder(im, 3)

	catHV, n1 := enc.EncodeText("cats purr and chase mice around the house all day long", 1)
	dogHV, n2 := enc.EncodeText("dogs bark and fetch sticks in the park every morning", 2)
	if n1 == 0 || n2 == 0 {
		t.Fatal("encoding produced no n-grams")
	}
	mem, err := NewMemory([]*Vector{catHV, dogHV}, []string{"cat", "dog"})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := enc.EncodeText("the dog fetched the stick in the park", 3)

	dh, err := NewDHAM(DHAMConfig{D: Dim, C: 2}, mem)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := NewRHAM(RHAMConfig{D: Dim, C: 2}, mem)
	if err != nil {
		t.Fatal(err)
	}
	ah, err := NewAHAM(AHAMConfig{D: Dim, C: 2}, mem)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Searcher{dh, rh, ah, NewExactSearcher(mem)} {
		if got := mem.Label(s.Search(q).Index); got != "dog" {
			t.Errorf("%s classified the dog query as %q", s.Name(), got)
		}
	}
}

func TestFacadeOps(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := RandomVector(Dim, rng)
	b := RandomVector(Dim, rng)
	if !Bind(Bind(a, b), b).Equal(a) {
		t.Error("Bind self-inverse broken through facade")
	}
	if Hamming(a, a) != 0 {
		t.Error("Hamming broken through facade")
	}
	m := Bundle(1, a, b, RandomVector(Dim, rng))
	if d := Hamming(m, a); d >= Dim/2 {
		t.Error("Bundle does not preserve similarity through facade")
	}
	p := Permute(a, 3)
	if Hamming(p, a) < Dim/3 {
		t.Error("Permute does not decorrelate through facade")
	}
	acc := NewAccumulator(Dim, 0)
	acc.Add(a)
	if !acc.Majority().Equal(a) {
		t.Error("single-vector majority is not identity")
	}
	if NewVector(16).Ones() != 0 {
		t.Error("NewVector not zero")
	}
}

func TestFacadeLanguagePipeline(t *testing.T) {
	langs := Languages()
	if len(langs) != 21 {
		t.Fatalf("%d languages", len(langs))
	}
	p := DefaultLanguageParams()
	p.TrainChars = 20_000
	p.TestPerLang = 5
	tr, err := TrainLanguages(langs[:5], p)
	if err != nil {
		t.Fatal(err)
	}
	ts := MakeTestSet(langs[:5], p)
	ts.Encode(tr)
	rep := Evaluate(NewExactSearcher(tr.Memory), tr.Memory, ts)
	if rep.Accuracy() < 0.6 {
		t.Fatalf("facade pipeline accuracy %.3f unexpectedly low", rep.Accuracy())
	}
}

func TestFacadeCostModels(t *testing.T) {
	dc, err := (DHAMConfig{D: 10000, C: 100}).Cost()
	if err != nil {
		t.Fatal(err)
	}
	rc, err := (RHAMConfig{D: 10000, C: 100}).Cost()
	if err != nil {
		t.Fatal(err)
	}
	ac, err := (AHAMConfig{D: 10000, C: 100}).Cost()
	if err != nil {
		t.Fatal(err)
	}
	if !(ac.EDP() < rc.EDP() && rc.EDP() < dc.EDP()) {
		t.Errorf("EDP ordering broken: A=%v R=%v D=%v", ac.EDP(), rc.EDP(), dc.EDP())
	}
}

func TestFacadeStructuralSimulators(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	classes := make([]*Vector, 4)
	labels := []string{"w", "x", "y", "z"}
	for i := range classes {
		classes[i] = RandomVector(2000, rng)
	}
	mem, err := NewMemory(classes, labels)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDHAMDatapath(DHAMConfig{D: 2000, C: 4}, mem)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRHAMCircuit(RHAMConfig{D: 2000, C: 4}, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := NewAHAMCircuit(AHAMConfig{D: 2000, C: 4}, mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := RandomVector(2000, rng)
	want, _ := mem.Nearest(q)
	for _, s := range []Searcher{dp, rc, ac} {
		if got := s.Search(q).Index; got != want {
			t.Errorf("%s returned %d, exact %d", s.Name(), got, want)
		}
	}
	if dp.Stats().Searches != 1 {
		t.Error("datapath stats not accumulating")
	}
}

func TestFacadeBatchAndPersistence(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	classes := make([]*Vector, 3)
	labels := []string{"a", "b", "c"}
	for i := range classes {
		classes[i] = RandomVector(1000, rng)
	}
	mem, err := NewMemory(classes, labels)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]*Vector, 9)
	for i := range queries {
		queries[i] = RandomVector(1000, rng)
	}
	s := NewExactSearcher(mem)
	par := SearchAll(s, queries, true)
	seq := SearchAll(s, queries, false)
	for i := range par {
		if par[i] != seq[i] {
			t.Fatal("parallel batch differs from sequential")
		}
	}
	// Persistence round trip through the facade.
	var buf bytes.Buffer
	if err := SaveMemory(&buf, mem); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMemory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Classes() != 3 || !got.Class(1).Equal(mem.Class(1)) {
		t.Fatal("facade persistence round trip broken")
	}
	// TopK and Margin through the type alias.
	top := mem.TopK(queries[0], 2)
	if len(top) != 2 || mem.Margin(queries[0]) != top[1].Distance-top[0].Distance {
		t.Fatal("TopK/Margin broken through facade")
	}
}
