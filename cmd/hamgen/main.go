// Command hamgen generates and inspects the synthetic multilingual corpus
// that substitutes for the paper's Wortschatz/Europarl data (DESIGN.md §1).
//
// Usage:
//
//	hamgen -list                         # list the 21 languages
//	hamgen -lang french -chars 500       # print 500 chars of French-like text
//	hamgen -lang german -sentences 5     # print 5 labeled test sentences
//	hamgen -corpus out/ -chars 100000    # write per-language training files
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"

	"hdam"
)

func main() {
	list := flag.Bool("list", false, "list languages and families")
	langName := flag.String("lang", "", "language to sample from")
	chars := flag.Int("chars", 400, "characters of running text")
	sentences := flag.Int("sentences", 0, "emit N labeled sentences instead of running text")
	corpus := flag.String("corpus", "", "write per-language training files into this directory")
	seed := flag.Uint64("seed", 2017, "generation seed")
	flag.Parse()

	langs := hdam.Languages()

	switch {
	case *list:
		for _, l := range langs {
			fmt.Printf("%-11s %s\n", l.Name, l.Family)
		}
	case *corpus != "":
		if err := os.MkdirAll(*corpus, 0o755); err != nil {
			fatal(err)
		}
		for i, l := range langs {
			rng := rand.New(rand.NewPCG(*seed, uint64(i)))
			path := filepath.Join(*corpus, l.Name+".txt")
			if err := os.WriteFile(path, []byte(l.GenerateText(*chars, rng)), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d chars)\n", path, *chars)
		}
	case *langName != "":
		var chosen *hdam.Language
		for _, l := range langs {
			if l.Name == *langName {
				chosen = l
				break
			}
		}
		if chosen == nil {
			fatal(fmt.Errorf("unknown language %q (use -list)", *langName))
		}
		rng := rand.New(rand.NewPCG(*seed, 7))
		if *sentences > 0 {
			for i := 0; i < *sentences; i++ {
				fmt.Printf("%s\t%s\n", chosen.Name, chosen.GenerateSentence(120, rng))
			}
		} else {
			fmt.Println(chosen.GenerateText(*chars, rng))
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: hamgen -list | -lang <name> [-chars N | -sentences N] | -corpus <dir>")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hamgen: %v\n", err)
	os.Exit(1)
}
