// Command hambench regenerates the tables and figures of the HPCA'17 paper
// "Exploring Hyperdimensional Associative Memory".
//
// Usage:
//
//	hambench [flags] <experiment>...
//	hambench -list
//	hambench all
//
// Experiments: fig1, table1, table2, fig4, fig5, fig7, table3, fig9, fig10,
// fig11, fig12, fig13 (the paper's artifacts), plus ablate-blocksize,
// ablate-errormodel, ablate-stages and standby (this reproduction's
// ablations; see DESIGN.md for the per-experiment index).
//
// Flags:
//
//	-quick       run the reduced protocol (small corpora; for smoke runs)
//	-train N     training characters per language (overrides scale)
//	-test N      test sentences per language (overrides scale)
//	-seed N      experiment seed (default 2017)
//	-csv         emit CSV instead of aligned tables
//	-json FILE   run the kernel benchmark suite and append its report to the
//	             benchmark trajectory file (legacy single-report files are
//	             migrated to the trajectory format in place)
//	-serve       also run the closed-loop serve load harness (throughput and
//	             p50/p95/p99 latency at several concurrencies) and record a
//	             serve/* section in the report
//	-serve-requests N  requests per serve load point (default 2048)
//	-cascade     also run the cascaded-search harness on the trained langid
//	             workload (single-core qps, p50/p95/p99, stage-1 hit-rate,
//	             widen-rate, speedup over the exact scan, mismatch audit) and
//	             record a cascade/* section in the report
//	-fleet       also run the scatter-gather fleet harness (a healthy replica
//	             fleet, then the same fleet with one replica stalled and one
//	             crashed) and record a fleet/* section with qps, p50/p95/p99
//	             and the degraded-answer-rate
//	-fleet-requests N  requests per fleet load point (default 2048)
//	-remotefleet also run the remote-fleet chaos soak (a coordinator
//	             scatter-gathering over TCP to replica servers, with one
//	             replica killed and one link blackholed for the middle
//	             third of the run) and record a remote_fleet/* section
//	-remotefleet-requests N  requests per remote-fleet soak point (default 2048)
//	-remotefleet-binary P    hamserve binary: replicas run as real -replica
//	             subprocesses instead of in-process servers
//	-net         also run the open-loop network load harness (the binary
//	             wire protocol and HTTP/JSON at increasing offered load,
//	             zipfian keys, one deliberate overload point) and record a
//	             net/* section with offered vs. achieved qps,
//	             p50/p95/p99/p999 and shed/error rates
//	-net-duration D  measurement window per net load point (default 2s)
//	-coldstart   also run the cold-start comparison (train-and-save vs.
//	             checksummed snapshot load) and record a coldstart/* section
//	-learn       also run the train-while-serve harness (closed-loop search
//	             qps and p50/p95/p99 with ingest off vs on, reconcile
//	             latency, and the accuracy-vs-examples trajectory as new
//	             languages arrive mid-run) and record a learn/* section
//	-learn-duration D  measurement window per learn phase (default 2s)
//	-list        print the available experiment ids and exit
//
// With -json and no experiment ids, only the benchmark suite runs; this is
// how BENCH.json, the repository's benchmark trajectory file, is produced
// (make bench).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hdam/internal/experiments"
	"hdam/internal/perf"
	"hdam/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "run the reduced protocol")
	trainChars := flag.Int("train", 0, "training characters per language (0 = scale default)")
	testPerLang := flag.Int("test", 0, "test sentences per language (0 = scale default)")
	seed := flag.Uint64("seed", 2017, "experiment seed")
	csv := flag.Bool("csv", false, "emit CSV")
	outDir := flag.String("out", "", "also write each experiment's tables as CSV files into this directory")
	jsonOut := flag.String("json", "", "run the kernel benchmark suite and append its JSON report to this trajectory file")
	serveLoad := flag.Bool("serve", false, "also run the closed-loop serve load harness")
	serveRequests := flag.Int("serve-requests", 2048, "requests per serve load point")
	cascadeBench := flag.Bool("cascade", false, "also run the cascaded-search harness on the trained langid workload")
	coldStart := flag.Bool("coldstart", false, "also run the cold-start comparison (train-and-save vs. snapshot load) and record a coldstart/* section in the report")
	chaos := flag.Bool("chaos", false, "run the chaos soak: serve engine under injected worker panics, latency spikes and a slow shard")
	chaosRequests := flag.Int("chaos-requests", 2048, "requests for the chaos soak")
	fleetBench := flag.Bool("fleet", false, "also run the scatter-gather fleet harness (healthy and one-stall-one-crash points) and record a fleet/* section in the report")
	fleetRequests := flag.Int("fleet-requests", 2048, "requests per fleet load point")
	remoteFleet := flag.Bool("remotefleet", false, "also run the remote-fleet chaos soak (coordinator and TCP replica servers under a kill and a blackhole) and record a remote_fleet/* section in the report")
	remoteFleetRequests := flag.Int("remotefleet-requests", 2048, "requests per remote-fleet soak point")
	remoteFleetBinary := flag.String("remotefleet-binary", "", "hamserve binary for the remote-fleet soak: replicas run as real -replica subprocesses (default in-process servers over TCP)")
	netBench := flag.Bool("net", false, "also run the open-loop network load harness (binary and HTTP protocols at increasing offered load) and record a net/* section in the report")
	netDuration := flag.Duration("net-duration", 2*time.Second, "measurement window per net load point")
	learnBench := flag.Bool("learn", false, "also run the train-while-serve harness (search qps/p99 with ingest off vs on, reconcile latency, accuracy-vs-examples) and record a learn/* section in the report")
	learnDuration := flag.Duration("learn-duration", 2*time.Second, "measurement window per learn phase")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, id := range experiments.RunOrder {
			fmt.Println(id)
		}
		return
	}
	if *chaos {
		if err := runChaosSoak(*chaosRequests, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "hambench: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" || *serveLoad || *coldStart || *cascadeBench || *fleetBench || *remoteFleet || *netBench || *learnBench {
		if err := runBenchSuite(*jsonOut, *serveLoad, *serveRequests, *coldStart, *cascadeBench, *fleetBench, *fleetRequests, *remoteFleet, *remoteFleetRequests, *remoteFleetBinary, *netBench, *netDuration, *learnBench, *learnDuration, *trainChars, *testPerLang); err != nil {
			fmt.Fprintf(os.Stderr, "hambench: %v\n", err)
			os.Exit(1)
		}
	}
	args := flag.Args()
	if len(args) == 0 {
		if *jsonOut != "" || *serveLoad || *coldStart || *chaos || *cascadeBench || *fleetBench || *remoteFleet || *netBench || *learnBench {
			return
		}
		fmt.Fprintln(os.Stderr, "usage: hambench [flags] <experiment>... | all   (-list for ids)")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiments.RunOrder
	}

	scale := experiments.FullScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	if *trainChars > 0 {
		scale.TrainChars = *trainChars
	}
	if *testPerLang > 0 {
		scale.TestPerLang = *testPerLang
	}
	env := experiments.NewEnv(scale, *seed)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hambench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range args {
		start := time.Now()
		tables, err := experiments.Run(id, env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hambench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for k, t := range tables {
			var renderErr error
			if *csv {
				renderErr = t.RenderCSV(os.Stdout)
			} else {
				renderErr = t.Render(os.Stdout)
			}
			if renderErr != nil {
				fmt.Fprintf(os.Stderr, "hambench: rendering %s: %v\n", id, renderErr)
				os.Exit(1)
			}
			fmt.Println()
			if *outDir != "" {
				name := id
				if len(tables) > 1 {
					name = fmt.Sprintf("%s-%d", id, k)
				}
				if err := writeCSV(filepath.Join(*outDir, name+".csv"), t); err != nil {
					fmt.Fprintf(os.Stderr, "hambench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Fprintf(os.Stderr, "[%s finished in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runBenchSuite runs the perf kernel benchmarks (plus, optionally, the serve
// load harness, the cascaded-search harness and the cold-start comparison)
// and appends the report to the trajectory file at path.
func runBenchSuite(path string, serveLoad bool, serveRequests int, coldStart, cascade, fleetBench bool, fleetRequests int, remoteFleet bool, remoteFleetRequests int, remoteFleetBinary string, netBench bool, netDuration time.Duration, learnBench bool, learnDuration time.Duration, trainChars, testPerLang int) error {
	fmt.Fprintf(os.Stderr, "[running kernel benchmark suite (kernel %s)]\n", perf.KernelName)
	start := time.Now()
	rep := perf.RunKernels()
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "  %-28s %12.1f ns/op %8d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	if serveLoad {
		fmt.Fprintln(os.Stderr, "[running serve load harness]")
		results, err := perf.RunServe(perf.DefaultServeLoads(serveRequests))
		if err != nil {
			return err
		}
		rep.Serve = results
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "  %-28s %9.0f qps  p50 %8.1fµs  p95 %8.1fµs  p99 %8.1fµs  %5.2fx\n",
				r.Name, r.QPS, r.P50Us, r.P95Us, r.P99Us, r.SpeedupVsSerial)
		}
	}
	if fleetBench {
		fmt.Fprintln(os.Stderr, "[running scatter-gather fleet harness]")
		points := perf.DefaultFleetPoints(fleetRequests)
		results, err := perf.RunFleet(points)
		if err != nil {
			return err
		}
		rep.Fleet = results
		var violated int
		for i, r := range results {
			fmt.Fprintf(os.Stderr, "  %-28s %9.0f qps  p50 %8.1fµs  p95 %8.1fµs  p99 %8.1fµs  degraded %5.1f%%  erasures %d\n",
				r.Name, r.QPS, r.P50Us, r.P95Us, r.P99Us, 100*r.DegradedRate, r.Erasures)
			for _, line := range r.Violations(points[i]) {
				fmt.Fprintf(os.Stderr, "  VIOLATED: %s\n", line)
				violated++
			}
		}
		if violated > 0 {
			return fmt.Errorf("fleet harness violated %d acceptance criteria", violated)
		}
	}
	if remoteFleet {
		fmt.Fprintln(os.Stderr, "[running remote-fleet chaos soak]")
		points := perf.DefaultRemoteFleetPoints(remoteFleetRequests, remoteFleetBinary)
		results, err := perf.RunRemoteFleet(points)
		if err != nil {
			return err
		}
		rep.RemoteFleet = results
		var violated int
		for i, r := range results {
			fmt.Fprintf(os.Stderr, "  %-28s %9.0f qps  p50 %8.1fµs  p99 %8.1fµs  degraded %5.1f%%  reconnects %d  failovers %d  subprocess=%v\n",
				r.Name, r.QPS, r.P50Us, r.P99Us, 100*r.DegradedRate, r.Reconnects, r.Failovers, r.Subprocess)
			for _, line := range r.Violations(points[i]) {
				fmt.Fprintf(os.Stderr, "  VIOLATED: %s\n", line)
				violated++
			}
		}
		if violated > 0 {
			return fmt.Errorf("remote-fleet soak violated %d acceptance criteria", violated)
		}
	}
	if netBench {
		fmt.Fprintln(os.Stderr, "[running open-loop network load harness]")
		results, err := perf.RunNet(perf.DefaultNetLoads(netDuration))
		if err != nil {
			return err
		}
		rep.Net = results
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "  %-28s offered %8.0f  %9.0f qps  p50 %8.1fµs  p99 %8.1fµs  p999 %9.1fµs  shed %5.1f%%  err %5.1f%%\n",
				r.Name, r.OfferedQPS, r.QPS, r.P50Us, r.P99Us, r.P999Us, 100*r.ShedRate, 100*r.ErrorRate)
		}
	}
	if learnBench {
		fmt.Fprintln(os.Stderr, "[running train-while-serve harness]")
		results, err := perf.RunLearn(perf.LearnLoad{Duration: learnDuration})
		if err != nil {
			return err
		}
		rep.Learn = results
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "  %-28s %9.0f qps  p50 %8.1fµs  p95 %8.1fµs  p99 %8.1fµs",
				r.Name, r.SearchQPS, r.P50Us, r.P95Us, r.P99Us)
			if r.IngestOn {
				fmt.Fprintf(os.Stderr, "  p99 %+5.1f%%  ingest %7.0f/s  reconciles %d (p50 %.0fµs, max %.0fµs)  swaps %d",
					r.P99DeltaPct, r.IngestQPS, r.Reconciles, r.ReconcileP50Us, r.ReconcileMaxUs, r.Swaps)
			}
			fmt.Fprintln(os.Stderr)
			for _, a := range r.Accuracy {
				fmt.Fprintf(os.Stderr, "    gen %-3d %7d examples  %2d classes  new-language accuracy %5.1f%%\n",
					a.Gen, a.Examples, a.Classes, 100*a.Accuracy)
			}
		}
	}
	if cascade {
		fmt.Fprintln(os.Stderr, "[running cascaded-search harness]")
		results, err := perf.RunCascade(trainChars, testPerLang, 0)
		if err != nil {
			return err
		}
		rep.Cascade = results
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "  %-28s %9.0f qps  p50 %8.1fµs  p95 %8.1fµs  p99 %8.1fµs  %5.2fx", r.Name, r.QPS, r.P50Us, r.P95Us, r.P99Us, r.SpeedupVsExact)
			if r.SampledBits > 0 {
				fmt.Fprintf(os.Stderr, "  stage1-hit %5.1f%%  widen %4.1f%%  shortlist %.1f  mismatches %d",
					100*r.Stage1HitRate, 100*r.WidenRate, r.AvgShortlist, r.Mismatches)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	if coldStart {
		fmt.Fprintln(os.Stderr, "[running cold-start comparison]")
		results, err := perf.RunColdStart(perf.DefaultColdStartConfigs())
		if err != nil {
			return err
		}
		rep.ColdStart = results
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "  %-28s train %9.1fms  save %7.1fms  load %7.2fms  %8.0fx  zero-copy=%v bit-identical=%v\n",
				r.Name, r.TrainMs, r.SaveMs, r.LoadMs, r.Speedup, r.ZeroCopy, r.BitIdentical)
		}
	}
	if path == "" {
		fmt.Fprintf(os.Stderr, "[suite finished in %s; no -json file, not recorded]\n",
			time.Since(start).Round(time.Millisecond))
		return nil
	}
	if err := perf.AppendReport(path, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[suite finished in %s → appended to %s]\n", time.Since(start).Round(time.Millisecond), path)
	return nil
}

// runChaosSoak drives the serve engine under the seeded chaos protocol of
// EXPERIMENTS §18 and enforces its acceptance criteria: every request
// answered, non-faulted answers bit-identical to the serial loop, workers
// restarted after injected panics, bounded p99, zero goroutine leaks.
func runChaosSoak(requests int, seed uint64) error {
	fmt.Fprintln(os.Stderr, "[running chaos soak]")
	cfg := perf.DefaultChaosConfig()
	cfg.Requests = requests
	cfg.Seed = seed
	start := time.Now()
	r, err := perf.RunChaos(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "  %-24s %d requests: %d classified, %d faulted (typed errors), %d mismatches\n",
		r.Name, r.Requests, r.Classified, r.Faulted, r.Mismatches)
	fmt.Fprintf(os.Stderr, "  supervision: %d panics, %d restarts; hedging: %d re-issues, %d wins; %d shed\n",
		r.Panics, r.Restarts, r.Hedged, r.HedgeWins, r.Shed)
	fmt.Fprintf(os.Stderr, "  %9.0f qps  p50 %8.1fµs  p99 %8.1fµs  leaked goroutines %d\n",
		r.QPS, r.P50Us, r.P99Us, r.Leaked)
	if v := r.Violations(cfg); len(v) > 0 {
		for _, line := range v {
			fmt.Fprintf(os.Stderr, "  VIOLATED: %s\n", line)
		}
		return fmt.Errorf("chaos soak violated %d acceptance criteria", len(v))
	}
	fmt.Fprintf(os.Stderr, "[chaos soak passed in %s]\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// writeCSV writes one table to a CSV file.
func writeCSV(path string, t *report.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.RenderCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
