// Command langid trains the paper's 21-language recognizer and classifies
// text from stdin (one sample per line), reporting the predicted language
// per line and, when lines carry a "<language>\t<text>" prefix, the overall
// accuracy.
//
// Usage:
//
//	echo "the quick brown fox" | langid
//	langid -design aham -dim 10000 -train 200000 < samples.txt
//
// Flags:
//
//	-dim N       hypervector dimensionality (default 10,000)
//	-train N     training characters per language (default 200,000)
//	-design S    search hardware: exact | dham | rham | aham | cascade
//	             (default exact)
//	-cascade     shorthand for -design cascade: the two-stage d-sampled
//	             searcher, bit-identical to exact search (snapshot loads
//	             reuse the slice recorded at training time)
//	-seed N      pipeline seed
//	-demo        classify generated demo sentences instead of stdin
//	-resilient   serve through the confidence-gated escalation chain
//	-chain S     comma-separated escalation chain (default aham,rham,dham,exact)
//	-margin N    confidence threshold: escalate answers whose Hamming-distance
//	             margin over the runner-up is below N
//	-workers N   serve stdin through the micro-batching engine with N
//	             encode→search workers (0 = GOMAXPROCS, 1 = serial; designs
//	             with non-forkable randomness — rham, aham — are forced to 1;
//	             negative is rejected)
//	-batch N     micro-batch size for the serving engine (default 32; must be
//	             at least 1)
//	-shards N    word-range shards for the parallel distance kernel
//	             (0 = serial kernel, -1 = GOMAXPROCS; other negatives are
//	             rejected)
//	-save F      write the trained model as a versioned snapshot file
//	-load F      load a model snapshot (or legacy memory file) instead of
//	             training
//	-watch DIR   serve stdin from the newest snapshot in DIR, hot-swapping
//	             the model as new snapshots are published there
//	-fleet N     serve stdin through a scatter-gather fleet of N replica
//	             engines over a partitioned class matrix: exact answers when
//	             healthy, degraded-but-correct answers (erasures scored,
//	             coverage reported) when replicas fail; combines with -watch
//	             (snapshots roll through the whole fleet atomically)
//	-fleet-scheme S  fleet partition scheme: words (lost partition degrades
//	             to a d-sampled answer) or classes (lost partition excludes
//	             its classes); default words
//	-connect A1,A2,...  classify through a remote replica fleet: each
//	             address is a hamserve -replica process, address i serving
//	             partition i mod -partitions; the local model copy (-load
//	             the replicas' shared snapshot) provides the partition
//	             geometry, labels and the gather reduce
//	-partitions N  partition count for -connect (0 = one per address)
//	-listen A    serve the model over TCP on address A with the binary wire
//	             protocol instead of classifying stdin; combines with
//	             -load, -watch, -fleet, -workers and -batch. SIGINT/SIGTERM
//	             drains: every accepted request is answered before exit
//	-listen-http A  also (or instead) serve HTTP/JSON on address A
//	             (/classify, /statsz, /healthz)
//	-learn DIR   with -listen/-listen-http: also accept labeled examples
//	             (binary learn frames, POST /learn) while serving, folding
//	             them into new snapshot generations in DIR that hot-swap
//	             into the engine; exact search only, exclusive with -fleet,
//	             -connect, -watch, -resilient and -demo
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hdam"
)

func main() {
	dim := flag.Int("dim", hdam.Dim, "hypervector dimensionality")
	train := flag.Int("train", 200_000, "training characters per language")
	design := flag.String("design", "exact", "search hardware: exact | dham | rham | aham | cascade")
	cascade := flag.Bool("cascade", false, "serve through the cascaded d-sampled searcher (shorthand for -design cascade)")
	seed := flag.Uint64("seed", 2017, "pipeline seed")
	demo := flag.Bool("demo", false, "classify generated demo sentences")
	saveTo := flag.String("save", "", "write the trained model as a snapshot to this file after training")
	loadFrom := flag.String("load", "", "load a trained model (snapshot or legacy format) instead of training")
	watchDir := flag.String("watch", "", "serve stdin from the newest snapshot in this directory, hot-swapping as new ones appear")
	resilient := flag.Bool("resilient", false, "serve through the confidence-gated escalation chain")
	chain := flag.String("chain", "aham,rham,dham,exact", "comma-separated escalation chain for -resilient")
	margin := flag.Int("margin", 32, "confidence threshold (Hamming-distance margin) for -resilient")
	workers := flag.Int("workers", 1, "micro-batching engine workers (0 = GOMAXPROCS, 1 = serial loop)")
	batch := flag.Int("batch", 32, "micro-batch size for the serving engine (>= 1)")
	shards := flag.Int("shards", 0, "word-range shards for the distance kernel (0 = serial, -1 = GOMAXPROCS)")
	fleetN := flag.Int("fleet", 0, "serve stdin through a scatter-gather fleet of N replica engines (0 = off)")
	fleetScheme := flag.String("fleet-scheme", "words", "fleet partition scheme: words | classes")
	connect := flag.String("connect", "", "classify through a remote replica fleet: comma-separated hamserve -replica addresses, address i serving partition i mod -partitions")
	connectParts := flag.Int("partitions", 0, "partition count for -connect (0 = one per address)")
	listen := flag.String("listen", "", "serve over TCP with the binary wire protocol on this address instead of classifying stdin")
	listenHTTP := flag.String("listen-http", "", "serve HTTP/JSON (/classify, /statsz, /healthz) on this address")
	learnDir := flag.String("learn", "", "accept labeled examples while serving and fold new model generations into this directory (requires -listen or -listen-http)")
	flag.Parse()

	// Validate the hardware selection and engine shape before spending
	// minutes on training.
	if *cascade {
		*design = "cascade"
	}
	if !knownDesign(*design) {
		fmt.Fprintf(os.Stderr, "langid: unknown design %q (want exact, dham, rham, aham or cascade)\n\n", *design)
		flag.Usage()
		os.Exit(2)
	}
	if *resilient && *design == "cascade" {
		fmt.Fprintln(os.Stderr, "langid: -cascade is already margin-gated and cannot combine with -resilient")
		fmt.Fprintln(os.Stderr)
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "langid: negative -workers %d (0 = GOMAXPROCS, 1 = serial)\n\n", *workers)
		flag.Usage()
		os.Exit(2)
	}
	if *batch < 1 {
		fmt.Fprintf(os.Stderr, "langid: -batch %d below 1 (a micro-batch carries at least one request)\n\n", *batch)
		flag.Usage()
		os.Exit(2)
	}
	if *shards < -1 {
		fmt.Fprintf(os.Stderr, "langid: -shards %d (0 = serial kernel, -1 = GOMAXPROCS, positive = shard count)\n\n", *shards)
		flag.Usage()
		os.Exit(2)
	}
	if (*listen != "" || *listenHTTP != "") && *demo {
		fmt.Fprintln(os.Stderr, "langid: -listen serves sockets and cannot combine with -demo")
		fmt.Fprintln(os.Stderr)
		flag.Usage()
		os.Exit(2)
	}
	netCfg := hdam.NetConfig{BinaryAddr: *listen, HTTPAddr: *listenHTTP}
	serveNet := *listen != "" || *listenHTTP != ""
	if *learnDir != "" {
		if !serveNet {
			fmt.Fprintln(os.Stderr, "langid: -learn ingests over the network and needs -listen or -listen-http")
			fmt.Fprintln(os.Stderr)
			flag.Usage()
			os.Exit(2)
		}
		if *fleetN != 0 || *connect != "" || *watchDir != "" || *resilient || *demo || *design != "exact" {
			fmt.Fprintln(os.Stderr, "langid: -learn serves a whole-model exact engine and cannot combine with -fleet, -connect, -watch, -resilient, -demo or -design")
			fmt.Fprintln(os.Stderr)
			flag.Usage()
			os.Exit(2)
		}
	}
	var scheme hdam.FleetScheme
	if *fleetN != 0 {
		if *fleetN < 0 {
			fmt.Fprintf(os.Stderr, "langid: negative -fleet %d\n\n", *fleetN)
			flag.Usage()
			os.Exit(2)
		}
		switch *fleetScheme {
		case "words":
			scheme = hdam.FleetByWords
		case "classes":
			scheme = hdam.FleetByClasses
		default:
			fmt.Fprintf(os.Stderr, "langid: unknown -fleet-scheme %q (want words or classes)\n\n", *fleetScheme)
			flag.Usage()
			os.Exit(2)
		}
		if *design != "exact" || *resilient || *demo || *workers != 1 || *shards != 0 {
			fmt.Fprintln(os.Stderr, "langid: -fleet partitions the exact scan across replica engines and cannot combine with -design, -resilient, -demo, -workers or -shards")
			fmt.Fprintln(os.Stderr)
			flag.Usage()
			os.Exit(2)
		}
	}
	if *connect != "" {
		if *fleetN != 0 || *design != "exact" || *resilient || *demo || *workers != 1 || *shards != 0 || *watchDir != "" {
			fmt.Fprintln(os.Stderr, "langid: -connect scatter-gathers the exact scan over remote replicas and cannot combine with -fleet, -design, -resilient, -demo, -workers, -shards or -watch")
			fmt.Fprintln(os.Stderr)
			flag.Usage()
			os.Exit(2)
		}
		switch *fleetScheme {
		case "words":
			scheme = hdam.FleetByWords
		case "classes":
			scheme = hdam.FleetByClasses
		default:
			fmt.Fprintf(os.Stderr, "langid: unknown -fleet-scheme %q (want words or classes)\n\n", *fleetScheme)
			flag.Usage()
			os.Exit(2)
		}
	}
	var stages []string
	if *resilient {
		stages = strings.Split(*chain, ",")
		for _, st := range stages {
			if !knownDesign(strings.TrimSpace(st)) || strings.TrimSpace(st) == "cascade" {
				fmt.Fprintf(os.Stderr, "langid: unknown design %q in -chain %q (want exact, dham, rham or aham)\n\n", st, *chain)
				flag.Usage()
				os.Exit(2)
			}
		}
		if *margin < 0 {
			fmt.Fprintf(os.Stderr, "langid: negative -margin %d\n\n", *margin)
			flag.Usage()
			os.Exit(2)
		}
	}

	langs := hdam.Languages()
	p := hdam.DefaultLanguageParams()
	p.Dim = *dim
	p.TrainChars = *train
	p.Seed = *seed
	p.TestPerLang = 1 // the test set is not used in CLI mode

	if *watchDir != "" {
		if *fleetN > 0 {
			if err := serveFleetWatch(*watchDir, *fleetN, scheme, serveNet, netCfg); err != nil {
				fmt.Fprintf(os.Stderr, "langid: %v\n", err)
				os.Exit(1)
			}
			return
		}
		w := *workers
		if serialOnly(*design, false, nil) {
			fmt.Fprintln(os.Stderr, "langid: searcher carries non-forkable randomness; forcing -workers=1 (micro-batching stays on)")
			w = 1
		}
		if err := serveWatch(*watchDir, *design, w, *batch, *seed, serveNet, netCfg); err != nil {
			fmt.Fprintf(os.Stderr, "langid: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var tr *hdam.Trained
	casc := hdam.CascadeConfig{SliceOffset: -1}
	if *loadFrom != "" {
		var err error
		tr, p, casc, err = loadModel(*loadFrom, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "langid: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Fprintf(os.Stderr, "training %d languages at D=%d on %d chars each...\n",
			len(langs), p.Dim, p.TrainChars)
		start := time.Now()
		var err error
		tr, err = hdam.TrainLanguages(langs, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "langid: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trained in %s\n", time.Since(start).Round(time.Millisecond))
		if *saveTo != "" {
			// Select and record the cascade slice at save time: a reloaded
			// model then cascades over the exact components this one would.
			cfg := hdam.SnapshotConfig{Dim: p.Dim, NGram: p.NGram, Seed: p.Seed}
			if cas, err := hdam.NewCascadeSearcher(tr.Memory, casc); err == nil {
				cfg.SliceOffset, cfg.SliceWords = cas.SliceOffset(), cas.SliceWords()
				casc = hdam.CascadeConfig{SliceOffset: cas.SliceOffset(), SliceWords: cas.SliceWords()}
			}
			snap, err := hdam.CaptureSnapshot(tr.Memory, cfg,
				hdam.SnapshotProvenance{
					Trainer:    "langid",
					CorpusSeed: p.Seed,
					CreatedAt:  time.Now().UTC(),
					Note:       fmt.Sprintf("%d languages, %d chars each", len(langs), p.TrainChars),
				})
			if err == nil {
				err = hdam.SaveSnapshot(*saveTo, snap)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "langid: saving snapshot: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "saved model snapshot to %s\n", *saveTo)
		}
	}

	if *connect != "" {
		addrs := strings.Split(*connect, ",")
		parts := *connectParts
		if parts <= 0 {
			parts = len(addrs)
		}
		transports := make([]hdam.ReplicaTransport, len(addrs))
		for i, addr := range addrs {
			transports[i] = hdam.NewRemoteTransport(hdam.RemoteConfig{
				Addr: strings.TrimSpace(addr),
				Seed: *seed,
				Link: uint64(i),
			})
		}
		fl, err := hdam.NewRemoteFleet(tr.Memory, transports, hdam.FleetConfig{
			Partitions: parts, Scheme: scheme, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "langid: %v\n", err)
			os.Exit(1)
		}
		defer fl.Close()
		fmt.Fprintf(os.Stderr, "connected to %d remote replicas over %d partitions\n", len(addrs), parts)
		if serveNet {
			srv, err := hdam.ServeFleet(fl, netCfg)
			if err == nil {
				err = runNetServer(srv)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "langid: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := pumpStdinFleet(fl); err != nil {
			fmt.Fprintf(os.Stderr, "langid: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fleetN > 0 {
		fl, err := hdam.NewFleet(tr, hdam.FleetConfig{Replicas: *fleetN, Scheme: scheme, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "langid: %v\n", err)
			os.Exit(1)
		}
		defer fl.Close()
		if serveNet {
			srv, err := hdam.ServeFleet(fl, netCfg)
			if err == nil {
				err = runNetServer(srv)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "langid: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := pumpStdinFleet(fl); err != nil {
			fmt.Fprintf(os.Stderr, "langid: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *shards != 0 {
		// Route every searcher's distance kernel through the sharded
		// parallel matrix; outputs are bit-identical to the serial kernel.
		tr.Memory = tr.Memory.WithSharding(*shards)
		defer tr.Memory.Sharding().Close()
	}

	var searcher hdam.Searcher
	var res *hdam.Resilient
	var err error
	if *resilient {
		res, err = buildChain(stages, *margin, tr)
		searcher = res
	} else {
		searcher, err = buildSearcherMem(*design, tr.Memory, casc)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "langid: %v\n", err)
		os.Exit(1)
	}

	if serveNet {
		w := *workers
		if w != 1 && serialOnly(*design, *resilient, stages) {
			fmt.Fprintln(os.Stderr, "langid: searcher carries non-forkable randomness; forcing -workers=1 (micro-batching stays on)")
			w = 1
		}
		eng, err := hdam.NewEngine(tr, searcher, hdam.ServeConfig{
			Workers: w, MaxBatch: *batch, Seed: *seed,
		})
		if err == nil {
			if *learnDir != "" {
				err = serveLearn(eng, tr, *learnDir, netCfg)
			} else {
				var srv *hdam.NetServer
				srv, err = hdam.ServeEngine(eng, netCfg)
				if err == nil {
					err = runNetServer(srv)
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "langid: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *demo {
		runDemo(tr, searcher, langs, *seed)
		reportStages(res)
		reportCascade(searcher)
		return
	}

	if *workers != 1 {
		w := *workers
		if w != 1 && serialOnly(*design, *resilient, stages) {
			fmt.Fprintln(os.Stderr, "langid: searcher carries non-forkable randomness; forcing -workers=1 (micro-batching stays on)")
			w = 1
		}
		if err := serveStdin(tr, searcher, w, *batch, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "langid: %v\n", err)
			os.Exit(1)
		}
		reportStages(res)
		reportCascade(searcher)
		return
	}

	classified, correct, labeled := 0, 0, 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		want, text := "", line
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			want, text = line[:i], line[i+1:]
		}
		q, n := tr.Encoder.EncodeText(text, *seed+uint64(classified))
		if n == 0 {
			fmt.Printf("?\t%s\n", text)
			continue
		}
		got := tr.Memory.Label(searcher.Search(q).Index)
		fmt.Printf("%s\t%s\n", got, text)
		classified++
		if want != "" {
			labeled++
			if got == want {
				correct++
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "langid: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if labeled > 0 {
		fmt.Fprintf(os.Stderr, "accuracy: %d/%d (%.1f%%)\n",
			correct, labeled, 100*float64(correct)/float64(labeled))
	}
	reportStages(res)
	reportCascade(searcher)
}

// serialOnly reports whether the selected searcher carries per-search
// randomness that cannot fork into per-worker streams (the sequential-
// fallback rule of SearchAll): R-HAM's VOS injection and A-HAM's comparator
// offsets draw from one internal RNG.
func serialOnly(design string, resilient bool, stages []string) bool {
	randomized := func(d string) bool { return d == "rham" || d == "aham" }
	if !resilient {
		return randomized(design)
	}
	for _, st := range stages {
		if randomized(strings.TrimSpace(st)) {
			return true
		}
	}
	return false
}

// cascadeConfigFor derives the cascade configuration from a snapshot's
// recorded slice, falling back to build-time slice selection when the
// snapshot predates the slice fields.
func cascadeConfigFor(cfg hdam.SnapshotConfig) hdam.CascadeConfig {
	if cfg.SliceWords > 0 {
		return hdam.CascadeConfig{SliceOffset: cfg.SliceOffset, SliceWords: cfg.SliceWords}
	}
	return hdam.CascadeConfig{SliceOffset: -1}
}

// loadModel loads a trained model from a snapshot file, falling back to the
// legacy SaveMemory stream format, and returns the pipeline rebuilt around
// it plus the cascade configuration the model was saved with. Snapshot loads
// take dim, n-gram order and seed from the file's own recorded config (flag
// values are overridden); legacy loads can only recover the dimensionality
// and trust the flags for the rest.
func loadModel(path string, p hdam.LanguageParams) (*hdam.Trained, hdam.LanguageParams, hdam.CascadeConfig, error) {
	casc := hdam.CascadeConfig{SliceOffset: -1}
	snap, err := hdam.OpenSnapshot(path)
	if err == nil {
		// The snapshot stays open for the process lifetime: on linux the
		// model serves zero-copy from the file mapping.
		cfg := snap.Config()
		p.Dim, p.NGram, p.Seed = cfg.Dim, cfg.NGram, cfg.Seed
		mem := snap.Memory()
		prov := snap.Provenance()
		fmt.Fprintf(os.Stderr, "loaded snapshot %s: %d classes at D=%d (ngram=%d seed=%d trainer=%q zero-copy=%v)\n",
			path, mem.Classes(), mem.Dim(), cfg.NGram, cfg.Seed, prov.Trainer, snap.ZeroCopy())
		return rebuildTrained(mem, p), p, cascadeConfigFor(cfg), nil
	}
	if !errors.Is(err, hdam.ErrNotSnapshot) {
		return nil, p, casc, fmt.Errorf("loading snapshot %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, p, casc, err
	}
	defer f.Close()
	mem, err := hdam.LoadMemory(f)
	if err != nil {
		return nil, p, casc, fmt.Errorf("loading legacy memory %s: %w", path, err)
	}
	p.Dim = mem.Dim()
	fmt.Fprintf(os.Stderr, "loaded legacy memory %s: %d classes at D=%d\n", path, mem.Classes(), mem.Dim())
	return rebuildTrained(mem, p), p, casc, nil
}

// serveWatch serves stdin from the newest snapshot in dir, hot-swapping the
// engine as new snapshots are published (atomic rename makes partial files
// invisible). It blocks until a first model appears.
func serveWatch(dir, design string, workers, batch int, seed uint64, serveNet bool, netCfg hdam.NetConfig) error {
	var eng *hdam.Engine
	reg, err := hdam.NewModelRegistry(hdam.ModelRegistryConfig{
		Dir:      dir,
		Interval: time.Second,
		Swap: func(snap *hdam.Snapshot) error {
			mem := snap.Memory()
			searcher, err := buildSearcherMem(design, mem, cascadeConfigFor(snap.Config()))
			if err != nil {
				return err
			}
			if eng == nil {
				e, err := hdam.NewSnapshotEngine(snap, searcher, hdam.ServeConfig{
					Workers: workers, MaxBatch: batch, Seed: seed,
				})
				if err != nil {
					return err
				}
				eng = e
				return nil
			}
			_, err = eng.Swap(mem, searcher, hdam.SnapshotEncoderFactory(snap.Config()))
			return err
		},
		OnEvent: func(ev hdam.RegistryEvent) {
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "langid: %s %s: %v\n", ev.Kind, ev.Path, ev.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "langid: serving %s\n", ev.Path)
		},
	})
	if err != nil {
		return err
	}
	defer reg.Close()
	for eng == nil {
		if _, err := reg.Check(); err != nil {
			return err
		}
		if eng != nil {
			break
		}
		fmt.Fprintf(os.Stderr, "langid: waiting for a snapshot in %s...\n", dir)
		time.Sleep(time.Second)
	}
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go reg.Run(ctx)
	if serveNet {
		srv, err := hdam.ServeEngine(eng, netCfg)
		if err != nil {
			return err
		}
		if err := runNetServer(srv); err != nil {
			return err
		}
	} else if err := pumpStdin(eng); err != nil {
		return err
	}
	if st := eng.Stats(); st.Swaps > 0 {
		fmt.Fprintf(os.Stderr, "hot-swapped models %d times (serving generation %d)\n", st.Swaps, eng.Gen())
	}
	return nil
}

// serveFleetWatch serves stdin through a scatter-gather replica fleet fed
// from the newest snapshot in dir: the first valid snapshot builds the
// fleet, later ones roll through every replica as one generation (no answer
// mixes generations). It blocks until a first model appears.
func serveFleetWatch(dir string, replicas int, scheme hdam.FleetScheme, serveNet bool, netCfg hdam.NetConfig) error {
	var fl *hdam.Fleet
	reg, err := hdam.NewModelRegistry(hdam.ModelRegistryConfig{
		Dir:      dir,
		Interval: time.Second,
		Swap: func(snap *hdam.Snapshot) error {
			if fl == nil {
				f, err := hdam.NewSnapshotFleet(snap, hdam.FleetConfig{
					Replicas: replicas, Scheme: scheme, Seed: snap.Config().Seed,
				})
				if err != nil {
					return err
				}
				fl = f
				return nil
			}
			_, err := fl.Swap(snap.Memory())
			return err
		},
		OnEvent: func(ev hdam.RegistryEvent) {
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "langid: %s %s: %v\n", ev.Kind, ev.Path, ev.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "langid: serving %s\n", ev.Path)
		},
	})
	if err != nil {
		return err
	}
	defer reg.Close()
	for fl == nil {
		if _, err := reg.Check(); err != nil {
			return err
		}
		if fl != nil {
			break
		}
		fmt.Fprintf(os.Stderr, "langid: waiting for a snapshot in %s...\n", dir)
		time.Sleep(time.Second)
	}
	defer fl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go reg.Run(ctx)
	if serveNet {
		srv, err := hdam.ServeFleet(fl, netCfg)
		if err != nil {
			return err
		}
		if err := runNetServer(srv); err != nil {
			return err
		}
	} else if err := pumpStdinFleet(fl); err != nil {
		return err
	}
	if st := fl.Stats(); st.Swaps > 0 {
		fmt.Fprintf(os.Stderr, "rolled the fleet %d times (serving generation %d)\n", st.Swaps, fl.Gen())
	}
	return nil
}

// pumpStdinFleet classifies stdin lines through the fleet, annotating
// degraded answers with their coverage fraction.
func pumpStdinFleet(fl *hdam.Fleet) error {
	classified, correct, labeled, degraded := 0, 0, 0, 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		want, text := "", line
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			want, text = line[:i], line[i+1:]
		}
		ans, err := fl.Ask(context.Background(), text)
		if err != nil {
			fmt.Printf("?\t%s\n", text)
			continue
		}
		if ans.Degraded {
			degraded++
			fmt.Printf("%s\t%s\t(degraded, coverage %.2f)\n", ans.Label, text, ans.Coverage)
		} else {
			fmt.Printf("%s\t%s\n", ans.Label, text)
		}
		classified++
		if want != "" {
			labeled++
			if ans.Label == want {
				correct++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stdin: %v", err)
	}
	st := fl.Stats()
	fmt.Fprintf(os.Stderr, "fleet of %d replicas over %d partitions (%v): %d answered, %d degraded (%.1f%%), %d erasures, %d retried, %d hedged\n",
		fl.Replicas(), fl.Partitions(), fl.Scheme(), st.Answered, degraded, 100*st.DegradedRate(), st.Erasures, st.Retried, st.Hedged)
	if labeled > 0 {
		fmt.Fprintf(os.Stderr, "accuracy: %d/%d (%.1f%%)\n",
			correct, labeled, 100*float64(correct)/float64(labeled))
	}
	return nil
}

// serveStdin classifies stdin through the micro-batching engine: lines are
// submitted asynchronously and printed in input order by a reorder queue, so
// output is byte-compatible with the serial loop (modulo the engine's fixed
// tie-break seed).
func serveStdin(tr *hdam.Trained, searcher hdam.Searcher, workers, batch int, seed uint64) error {
	eng, err := hdam.NewEngine(tr, searcher, hdam.ServeConfig{
		Workers:  workers,
		MaxBatch: batch,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	return pumpStdin(eng)
}

// pumpStdin reads stdin lines into the engine and prints responses in input
// order.
func pumpStdin(eng *hdam.Engine) error {
	type pending struct {
		text, want string
		ch         <-chan hdam.ServeResponse
	}
	queue := make(chan pending, 4*eng.Config().MaxBatch)
	classified, correct, labeled := 0, 0, 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := range queue {
			r := <-p.ch
			if r.Err != nil {
				fmt.Printf("?\t%s\n", p.text)
				continue
			}
			fmt.Printf("%s\t%s\n", r.Label, p.text)
			classified++
			if p.want != "" {
				labeled++
				if r.Label == p.want {
					correct++
				}
			}
		}
	}()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		want, text := "", line
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			want, text = line[:i], line[i+1:]
		}
		ch, err := eng.Go(context.Background(), text)
		if err != nil {
			close(queue)
			<-done
			return err
		}
		queue <- pending{text: text, want: want, ch: ch}
	}
	close(queue)
	<-done
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading stdin: %v", err)
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "served %d requests in %d micro-batches (avg %.1f/batch, %d workers)\n",
		st.Submitted, st.Batches, st.AvgBatch(), eng.Config().Workers)
	if labeled > 0 {
		fmt.Fprintf(os.Stderr, "accuracy: %d/%d (%.1f%%)\n",
			correct, labeled, 100*float64(correct)/float64(labeled))
	}
	return nil
}

// knownDesign reports whether a -design / -chain entry names a searcher.
func knownDesign(d string) bool {
	switch d {
	case "exact", "dham", "rham", "aham", "cascade":
		return true
	}
	return false
}

// buildChain assembles the resilient escalation pipeline.
func buildChain(designs []string, margin int, tr *hdam.Trained) (*hdam.Resilient, error) {
	stages := make([]hdam.ResilientStage, len(designs))
	for i, d := range designs {
		s, err := buildSearcherMem(strings.TrimSpace(d), tr.Memory, hdam.CascadeConfig{})
		if err != nil {
			return nil, err
		}
		stages[i] = hdam.ResilientStage{Searcher: s}
	}
	return hdam.NewResilient(stages, hdam.ResilientConfig{MinMargin: margin})
}

// reportStages prints the escalation pipeline's health counters.
func reportStages(res *hdam.Resilient) {
	if res == nil || res.Searches() == 0 {
		return
	}
	total := res.Searches()
	fmt.Fprintf(os.Stderr, "resilient chain over %d searches:\n", total)
	for _, st := range res.Stats() {
		state := "closed"
		if st.BreakerOpen {
			state = "OPEN"
		}
		fmt.Fprintf(os.Stderr, "  %-28s accepted %4d  escalated %4d  skipped %4d  err %.3f  breaker %s\n",
			st.Name, st.Accepted, st.Escalated, st.Skipped, st.ErrEWMA, state)
	}
}

// buildSearcherMem builds the selected design over an arbitrary memory,
// taking its shape from the memory itself — the form hot-swapping needs,
// where each snapshot brings its own model. casc only applies to the
// cascade design (the zero value selects error-model defaults with a
// negative offset meaning build-time slice selection).
func buildSearcherMem(design string, mem *hdam.Memory, casc hdam.CascadeConfig) (hdam.Searcher, error) {
	d, c := mem.Dim(), mem.Classes()
	switch design {
	case "exact":
		return hdam.NewExactSearcher(mem), nil
	case "dham":
		return hdam.NewDHAM(hdam.DHAMConfig{D: d, C: c}, mem)
	case "rham":
		return hdam.NewRHAM(hdam.RHAMConfig{D: d, C: c}, mem)
	case "aham":
		return hdam.NewAHAM(hdam.AHAMConfig{D: d, C: c}, mem)
	case "cascade":
		return hdam.NewCascadeSearcher(mem, casc)
	default:
		return nil, fmt.Errorf("unknown design %q (exact|dham|rham|aham|cascade)", design)
	}
}

// reportCascade prints the cascaded searcher's stage counters.
func reportCascade(s hdam.Searcher) {
	c, ok := s.(*hdam.CascadeSearcher)
	if !ok {
		return
	}
	st := c.Stats()
	if st.Queries == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%s over slice [%d,+%d): %d searches, avg shortlist %.1f, widened %.2f%%\n",
		c.Name(), c.SliceOffset(), c.SliceWords(), st.Queries, st.AvgShortlist(), 100*st.WidenRate())
}

func runDemo(tr *hdam.Trained, searcher hdam.Searcher, langs []*hdam.Language, seed uint64) {
	rng := rand.New(rand.NewPCG(seed^0xde30, 0))
	correct, total := 0, 0
	for _, l := range langs {
		for k := 0; k < 3; k++ {
			s := l.GenerateSentence(120, rng)
			q, _ := tr.Encoder.EncodeText(s, seed+uint64(total))
			got := tr.Memory.Label(searcher.Search(q).Index)
			mark := "✗"
			if got == l.Name {
				mark = "✓"
				correct++
			}
			total++
			fmt.Printf("%s true=%-11s pred=%-11s %q\n", mark, l.Name, got, clip(s, 48))
		}
	}
	fmt.Printf("demo accuracy: %d/%d (%.1f%%) using %s\n",
		correct, total, 100*float64(correct)/float64(total), searcher.Name())
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// rebuildTrained reconstructs the encoder half of a pipeline around a
// loaded memory; item memories are deterministic in the seed, so the
// encoder matches the one that produced the saved prototypes.
func rebuildTrained(mem *hdam.Memory, p hdam.LanguageParams) *hdam.Trained {
	im := hdam.NewItemMemory(p.Dim, p.Seed)
	im.Preload(hdam.LatinAlphabet)
	return &hdam.Trained{Memory: mem, Encoder: hdam.NewEncoder(im, p.NGram), Params: p}
}

// serveLearn serves the engine with an attached online learner: learn
// frames and POST /learn ingest labeled examples, a background reconcile
// loop folds them into snapshot generations in dir, and the model registry
// hot-swaps each generation into the engine while queries keep flowing.
func serveLearn(eng *hdam.Engine, tr *hdam.Trained, dir string, netCfg hdam.NetConfig) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	reg, err := hdam.NewModelRegistry(hdam.ModelRegistryConfig{
		Dir: dir,
		Swap: func(snap *hdam.Snapshot) error {
			m, s, err := hdam.SnapshotModel(snap)
			if err != nil {
				return err
			}
			_, err = eng.Swap(m, s, hdam.SnapshotEncoderFactory(snap.Config()))
			return err
		},
	})
	if err != nil {
		return err
	}
	defer reg.Close()
	p := tr.Params
	lr, err := hdam.NewLearner(tr.Memory, hdam.LearnConfig{
		Dim:     p.Dim,
		NGram:   p.NGram,
		Seed:    p.Seed,
		Dir:     dir,
		Trainer: "langid",
		OnSnapshot: func(string) {
			if _, err := reg.Check(); err != nil {
				fmt.Fprintf(os.Stderr, "langid: registry: %v\n", err)
			}
		},
	})
	if err != nil {
		return err
	}
	defer lr.Close()
	go lr.Run(context.Background())
	srv, err := hdam.ServeLearningEngine(eng, lr, netCfg)
	if err != nil {
		return err
	}
	if err := runNetServer(srv); err != nil {
		return err
	}
	// The drain finished, so no more ingest can arrive: fold the tail.
	if rep, err := lr.Reconcile(); err != nil {
		fmt.Fprintf(os.Stderr, "langid: final reconcile: %v\n", err)
	} else if !rep.Skipped {
		fmt.Fprintf(os.Stderr, "langid: final reconcile: gen %d (%d classes, %d new examples) at %s\n",
			rep.Gen, rep.Classes, rep.NewExamples, rep.Path)
	}
	st := lr.Stats()
	fmt.Fprintf(os.Stderr, "langid: learned %d examples over %d reconciles (%d classes served)\n",
		st.Examples, st.Reconciles, st.Classes)
	return nil
}

// runNetServer announces the resolved listener addresses and serves until
// SIGINT/SIGTERM, then drains: listeners close, connected clients are told
// to stop submitting, and every accepted request is answered before exit.
func runNetServer(srv *hdam.NetServer) error {
	if a := srv.BinaryAddr(); a != nil {
		fmt.Printf("listening binary=%s\n", a)
	}
	if a := srv.HTTPAddr(); a != nil {
		fmt.Printf("listening http=%s\n", a)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "langid: %v, draining...\n", s)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		srv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "langid: drained clean: %d queries answered over %d connections (%d http requests)\n",
		st.Answered, st.Accepted, st.HTTPRequests)
	return nil
}
