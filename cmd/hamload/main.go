// Command hamload is an open-loop load generator for a running hamserve:
// arrivals follow a Poisson (optionally on/off bursty) schedule at the
// offered rate regardless of how fast the server answers, query keys are
// drawn zipfian so a hot head of texts dominates, and per-request latency
// is measured from each request's *intended* send time — a stalled server
// inflates the recorded tail instead of silently slowing the generator
// (no coordinated omission).
//
// Usage:
//
//	hamload -addr 127.0.0.1:7401 -qps 15000 -duration 5s
//	hamload -protocol http -http 127.0.0.1:7402 -qps 2000
//	hamload -protocol both -qps 5000 -bursty -batch 8 -json
//
// It reports offered vs. achieved qps, p50/p95/p99/p999 latency, and the
// shed and error rates; -json emits the same as a net/* report fragment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"hdam/internal/perf"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7401", "hamserve binary-protocol address")
	httpAddr := flag.String("http", "127.0.0.1:7402", "hamserve HTTP address")
	protocol := flag.String("protocol", "binary", "wire protocol to drive: binary | http | both")
	qps := flag.Float64("qps", 5000, "offered load, queries per second")
	duration := flag.Duration("duration", 5*time.Second, "measurement window per point")
	batch := flag.Int("batch", 1, "queries per frame (binary) or per POST (http)")
	conns := flag.Int("conns", 4, "client connections")
	bursty := flag.Bool("bursty", false, "on/off-modulated Poisson arrivals instead of steady Poisson")
	theta := flag.Float64("theta", 0.99, "zipf skew of the query keys, in (0,1)")
	keys := flag.Int("keys", 512, "distinct query texts")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of a table")
	flag.Parse()

	var points []perf.NetPoint
	mk := func(proto string) perf.NetPoint {
		return perf.NetPoint{
			Name:       fmt.Sprintf("%s/%.0f", proto, *qps),
			Protocol:   proto,
			OfferedQPS: *qps,
			Duration:   *duration,
			Batch:      *batch,
			Conns:      *conns,
			Bursty:     *bursty,
			ZipfTheta:  *theta,
			Keys:       *keys,
		}
	}
	switch *protocol {
	case "binary", "http":
		points = append(points, mk(*protocol))
	case "both":
		points = append(points, mk("binary"), mk("http"))
	default:
		fmt.Fprintf(os.Stderr, "hamload: unknown -protocol %q (want binary, http or both)\n", *protocol)
		os.Exit(2)
	}

	texts := perf.NetTexts(1024)
	results := make([]perf.NetResult, 0, len(points))
	for _, p := range points {
		fmt.Fprintf(os.Stderr, "hamload: driving %s at %.0f qps for %s...\n", p.Protocol, p.OfferedQPS, p.Duration)
		res, err := perf.DriveNetPoint(*addr, *httpAddr, texts, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamload: %v\n", err)
			os.Exit(1)
		}
		results = append(results, res)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "hamload: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%-16s %10s %10s %9s %9s %9s %9s %7s %7s\n",
		"point", "offered", "qps", "p50us", "p95us", "p99us", "p999us", "shed%", "err%")
	for _, r := range results {
		fmt.Printf("%-16s %10.0f %10.0f %9.0f %9.0f %9.0f %9.0f %7.2f %7.2f\n",
			r.Name, r.OfferedQPS, r.QPS, r.P50Us, r.P95Us, r.P99Us, r.P999Us,
			100*r.ShedRate, 100*r.ErrorRate)
	}
}
