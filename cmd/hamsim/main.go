// Command hamsim explores the circuit-behavioral models behind R-HAM and
// A-HAM: match-line discharge waveforms, sense-bank timing, TCAM sense
// margins, LTA resolution, and measured misread rates — the interactive
// counterpart of the HSPICE runs in the paper's §IV-B.
//
// Usage:
//
//	hamsim ml -cells 4 -ron 500e3 -vdd 1.0        # discharge curves (Fig. 4)
//	hamsim sense                                   # sense-bank sampling times
//	hamsim lta -dim 10000 -bits 14 -stages 14      # LTA resolution (Fig. 7)
//	hamsim lta -dim 10000 -pv 0.35 -droop 0.10     # variation corner (Fig. 13)
//	hamsim tcam -cells 10000                       # device sense margins
//	hamsim misread -vos                            # measured block misread rate
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"strings"

	"hdam/internal/analog"
	"hdam/internal/core"
	"hdam/internal/hv"
	"hdam/internal/rham"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "ml":
		runML(args)
	case "sense":
		runSense(args)
	case "lta":
		runLTA(args)
	case "tcam":
		runTCAM(args)
	case "misread":
		runMisread(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hamsim <ml|sense|lta|tcam|misread> [flags]")
	os.Exit(2)
}

func runML(args []string) {
	fs := flag.NewFlagSet("ml", flag.ExitOnError)
	cells := fs.Int("cells", 4, "cells per match line")
	ron := fs.Float64("ron", 500e3, "memristor ON resistance (Ω)")
	vdd := fs.Float64("vdd", 1.0, "supply voltage (V)")
	msat := fs.Float64("msat", 12, "current-saturation knee (mismatches)")
	fs.Parse(args)

	ml := analog.MatchLine{
		Cells: *cells, VDD: *vdd, RonOhm: *ron,
		CapPerCellF: 1.2e-15, SatMismatches: *msat,
	}
	vref := 0.5
	fmt.Printf("match line: %d cells, VDD=%.2f V, R_ON=%.3g Ω, m_sat=%.1f\n",
		*cells, *vdd, *ron, *msat)
	fmt.Printf("%-10s %-16s %s\n", "distance", "cross time (ns)", "discharge curve (V/VDD over 3×T1)")
	tmax := 3 * ml.CrossTime(1, vref)
	for m := 0; m <= *cells; m++ {
		ct := ml.CrossTime(m, vref)
		ctStr := "∞"
		if !math.IsInf(ct, 1) {
			ctStr = fmt.Sprintf("%.3f", ct*1e9)
		}
		curve := ml.Curve(m, tmax, 32)
		fmt.Printf("%-10d %-16s %s\n", m, ctStr, spark(curve))
	}
}

// spark renders a waveform as a unicode sparkline.
func spark(vs []float64) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, v := range vs {
		i := int(v * float64(len(levels)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(levels) {
			i = len(levels) - 1
		}
		sb.WriteRune(levels[i])
	}
	return sb.String()
}

func runSense(args []string) {
	fs := flag.NewFlagSet("sense", flag.ExitOnError)
	vdd := fs.Float64("vdd", 1.0, "block supply voltage (V)")
	fs.Parse(args)
	ml := analog.RHAMBlock(*vdd)
	sb := analog.NewSenseBank(ml, 0.5)
	fmt.Printf("sense bank for a 4-bit block at VDD=%.2f V (vref=0.5 V)\n", *vdd)
	for j, t := range sb.SampleTimes() {
		fmt.Printf("  amplifier %d (detects distance ≥ %d): samples at %.3f ns\n", j+1, j+1, t*1e9)
	}
	fmt.Println("readback check:")
	for m := 0; m <= 4; m++ {
		code := sb.Read(m)
		fmt.Printf("  distance %d → code %v → decoded %d\n", m, code, analog.Distance(code))
	}
}

func runLTA(args []string) {
	fs := flag.NewFlagSet("lta", flag.ExitOnError)
	dim := fs.Int("dim", 10000, "hypervector dimensionality")
	bitsN := fs.Int("bits", 0, "LTA resolution bits (0 = paper pairing)")
	stages := fs.Int("stages", 0, "stage count (0 = paper pairing)")
	pv := fs.Float64("pv", 0, "process variation 3σ fraction (0–0.35)")
	droop := fs.Float64("droop", 0, "supply droop fraction (0, 0.05, 0.10)")
	mc := fs.Int("mc", 5000, "Monte-Carlo samples")
	fs.Parse(args)

	b := *bitsN
	if b == 0 {
		b = analog.BitsFor(*dim)
	}
	n := *stages
	if n == 0 {
		n = analog.StagesFor(*dim)
	}
	l := analog.LTA{Bits: b, Stages: n}
	v := analog.Variation{Process3Sigma: *pv, SupplyDrop: *droop}
	fmt.Printf("LTA %d bits × %d stages at D=%d (%d cells/stage)\n", b, n, *dim, l.StageCells(*dim))
	fmt.Printf("  closed-form minimum detectable distance: %d bits\n", l.MinDetectable(*dim, v))
	r := l.MonteCarlo(*dim, v, *mc, 2017)
	fmt.Printf("  Monte-Carlo (%d samples): median %d, 3σ %d bits\n",
		r.Runs(), r.Quantile(0.5), r.Quantile(0.9987))
}

func runTCAM(args []string) {
	fs := flag.NewFlagSet("tcam", flag.ExitOnError)
	cells := fs.Int("cells", 10000, "cells sharing the match line")
	ron := fs.Float64("ron", 500e3, "ON resistance (Ω)")
	roff := fs.Float64("roff", 100e9, "OFF resistance (Ω)")
	fs.Parse(args)
	cell := analog.TCAMCell{RonOhm: *ron, RoffOhm: *roff}
	fmt.Println(cell)
	fmt.Printf("  sense margin with 1 mismatch among %d cells: %.1f×\n", *cells, cell.SenseMargin(*cells))
	fmt.Printf("  largest row keeping ≥10× margin: %d cells\n", cell.MaxRowForMargin(10))
}

func runMisread(args []string) {
	fs := flag.NewFlagSet("misread", flag.ExitOnError)
	vos := fs.Bool("vos", false, "measure the 0.78 V overscaled corner")
	trials := fs.Int("trials", 20000, "read trials")
	fs.Parse(args)

	// A minimal 2-class memory is enough to instantiate the circuit path.
	rng := rand.New(rand.NewPCG(1, 1))
	mem := core.MustMemory(
		[]*hv.Vector{hv.Random(100, rng), hv.Random(100, rng)},
		[]string{"a", "b"})
	h, err := rham.NewCircuit(rham.Config{D: 100, C: 2}, mem, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hamsim: %v\n", err)
		os.Exit(1)
	}
	corner := "nominal 1.0 V"
	if *vos {
		corner = "overscaled 0.78 V"
	}
	rate := h.MisreadRate(*vos, *trials)
	fmt.Printf("block misread rate at the %s corner: %.4f (%d trials)\n", corner, rate, *trials)
	fmt.Printf("fast functional path injects VOS misreads at %.2f\n", rham.DefaultVOSErrRate)
}
