// Command hamserve serves a hyperdimensional associative-memory model over
// TCP: the length-prefixed binary protocol for throughput and HTTP/JSON
// for debuggability (/classify, /statsz, /healthz). The model is loaded
// from a snapshot (-load) or trained fresh from the synthetic language
// corpus; requests flow through the micro-batching serve engine (or a
// scatter-gather fleet with -fleet).
//
// On SIGINT/SIGTERM the server drains: listeners close, connected clients
// are told to stop submitting, and every accepted request is answered —
// classified within the drain deadline, failed fast as drained after.
//
// Usage:
//
//	hamserve                              # train, serve on the default ports
//	hamserve -load model.ham              # serve a snapshot
//	hamserve -listen :0 -http :0          # ephemeral ports (printed on stdout)
//	hamserve -fleet 4                     # serve through a replica fleet
//	hamserve -learn -learn-dir models/    # accept labeled examples while serving
//
// With -learn the server also accepts labeled training examples (binary
// learn frames and POST /learn) while answering queries. Examples stream
// into striped accumulators; a background reconcile loop folds them into a
// new snapshot generation in -learn-dir, which the model registry validates
// and hot-swaps into the serving engine with zero downtime. Learning is an
// engine-only mode: it is mutually exclusive with -fleet, -replica and
// -remote (fleet coordinators refuse learn traffic by design — see
// internal/fleet).
//
// Distributed deployment splits the fleet across processes: each replica
// serves one partition of a shared snapshot and answers partial queries
// (per-class distances) over the binary protocol, and a coordinator
// scatter-gathers across them with self-healing connections:
//
//	hamserve -replica -partition 0 -partitions 2 -load model.ham -listen :7411
//	hamserve -replica -partition 1 -partitions 2 -load model.ham -listen :7412
//	hamserve -remote 127.0.0.1:7411,127.0.0.1:7412 -partitions 2 -load model.ham
//
// The resolved addresses are printed to stdout as "listening proto=addr"
// lines, so scripts can scrape ephemeral ports.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hdam"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7401", "binary-protocol listen address (empty to disable)")
	httpAddr := flag.String("http", "127.0.0.1:7402", "HTTP/JSON listen address (empty to disable)")
	load := flag.String("load", "", "serve this model snapshot instead of training")
	dim := flag.Int("dim", hdam.Dim, "hypervector dimensionality (training only)")
	train := flag.Int("train", 50_000, "training characters per language (training only)")
	seed := flag.Uint64("seed", 2017, "pipeline seed")
	workers := flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	batch := flag.Int("batch", 64, "engine micro-batch size")
	queue := flag.Int("queue", 512, "engine pending-request queue")
	policy := flag.String("policy", "reject", "admission policy when the queue fills: block | reject | shed")
	fleetN := flag.Int("fleet", 0, "serve through a scatter-gather fleet of N replicas (0 = engine)")
	replica := flag.Bool("replica", false, "serve one partition of the model as a remote-fleet replica (answers partial queries with per-class distances)")
	partition := flag.Int("partition", 0, "this replica's partition index (with -replica)")
	partitions := flag.Int("partitions", 1, "total partitions in the fleet (with -replica)")
	scheme := flag.String("scheme", "by-words", "partition scheme: by-words | by-classes (with -replica or -remote)")
	remote := flag.String("remote", "", "serve through a remote fleet: comma-separated replica addresses, address i serving partition i mod -partitions")
	maxConns := flag.Int("max-conns", 256, "binary connection limit")
	maxInflight := flag.Int("max-inflight", 256, "in-flight frames per binary connection")
	maxHTTPInflight := flag.Int("max-http-inflight", 256, "concurrent /classify requests before 503 shedding")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain deadline on SIGTERM")
	learnOn := flag.Bool("learn", false, "accept labeled examples while serving and fold them into new model generations")
	learnDir := flag.String("learn-dir", "", "directory for reconciled snapshot generations (default: a fresh temp dir)")
	learnInterval := flag.Duration("learn-interval", 2*time.Second, "auto-reconcile period (with -learn)")
	learnCentroids := flag.Int("learn-centroids", 1, "accumulators per class, MEMHD-style multi-centroid mode when >1 (with -learn)")
	learnStripes := flag.Int("learn-stripes", 0, "ingest stripes (0 = GOMAXPROCS; with -learn)")
	learnBaseWeight := flag.Int("learn-base-weight", 1, "majority-vote weight of the base model's rows (with -learn)")
	flag.Parse()

	if *learnOn && (*fleetN > 0 || *replica || *remote != "") {
		fmt.Fprintln(os.Stderr, "hamserve: -learn serves a whole-model engine; it cannot combine with -fleet, -replica or -remote (fleet coordinators refuse learn traffic)")
		os.Exit(2)
	}

	var pol hdam.ServePolicy
	switch *policy {
	case "block":
		pol = hdam.ServeBlock
	case "reject":
		pol = hdam.ServeReject
	case "shed":
		pol = hdam.ServeShedOldest
	default:
		fmt.Fprintf(os.Stderr, "hamserve: unknown -policy %q (want block, reject or shed)\n", *policy)
		os.Exit(2)
	}

	tr, err := model(*load, *dim, *train, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
		os.Exit(1)
	}

	netCfg := hdam.NetConfig{
		BinaryAddr:      *listen,
		HTTPAddr:        *httpAddr,
		MaxConns:        *maxConns,
		MaxInflight:     *maxInflight,
		MaxHTTPInflight: *maxHTTPInflight,
	}
	var srv *hdam.NetServer
	var learner *hdam.Learner
	var learnReg *hdam.ModelRegistry
	switch {
	case *replica && *remote != "":
		fmt.Fprintln(os.Stderr, "hamserve: -replica and -remote are mutually exclusive")
		os.Exit(2)
	case *replica:
		sc, err := hdam.ParseFleetScheme(*scheme)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
			os.Exit(2)
		}
		eng, err := hdam.NewReplicaEngine(tr, sc, *partition, *partitions, hdam.ServeConfig{
			Workers:  *workers,
			MaxBatch: *batch,
			Queue:    *queue,
			Policy:   pol,
			Seed:     *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hamserve: replica for partition %d of %d (%s)\n", *partition, *partitions, sc)
		srv, err = hdam.ServeEngine(eng, netCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
			os.Exit(1)
		}
	case *remote != "":
		sc, err := hdam.ParseFleetScheme(*scheme)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
			os.Exit(2)
		}
		addrs := strings.Split(*remote, ",")
		transports := make([]hdam.ReplicaTransport, len(addrs))
		for i, addr := range addrs {
			transports[i] = hdam.NewRemoteTransport(hdam.RemoteConfig{
				Addr: strings.TrimSpace(addr),
				Seed: *seed,
				Link: uint64(i),
			})
		}
		fl, err := hdam.NewRemoteFleet(tr.Memory, transports, hdam.FleetConfig{
			Partitions: *partitions,
			Scheme:     sc,
			Seed:       *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hamserve: remote fleet over %d replicas, %d partitions (%s)\n",
			len(addrs), *partitions, sc)
		srv, err = hdam.ServeFleet(fl, netCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
			os.Exit(1)
		}
	case *fleetN > 0:
		fl, err := hdam.NewFleet(tr, hdam.FleetConfig{Replicas: *fleetN, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
			os.Exit(1)
		}
		srv, err = hdam.ServeFleet(fl, netCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
			os.Exit(1)
		}
	default:
		eng, err := hdam.NewEngine(tr, hdam.NewExactSearcher(tr.Memory), hdam.ServeConfig{
			Workers:  *workers,
			MaxBatch: *batch,
			Queue:    *queue,
			Policy:   pol,
			Seed:     *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
			os.Exit(1)
		}
		if *learnOn {
			dir := *learnDir
			if dir == "" {
				dir, err = os.MkdirTemp("", "hamserve-learn-*")
			} else {
				err = os.MkdirAll(dir, 0o755)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
				os.Exit(1)
			}
			reg, err := hdam.NewModelRegistry(hdam.ModelRegistryConfig{
				Dir: dir,
				Swap: func(snap *hdam.Snapshot) error {
					m, s, err := hdam.SnapshotModel(snap)
					if err != nil {
						return err
					}
					_, err = eng.Swap(m, s, hdam.SnapshotEncoderFactory(snap.Config()))
					return err
				},
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
				os.Exit(1)
			}
			p := tr.Params
			lr, err := hdam.NewLearner(tr.Memory, hdam.LearnConfig{
				Dim:        p.Dim,
				NGram:      p.NGram,
				Seed:       p.Seed,
				Dir:        dir,
				Interval:   *learnInterval,
				Centroids:  *learnCentroids,
				Stripes:    *learnStripes,
				BaseWeight: *learnBaseWeight,
				Trainer:    "hamserve",
				OnSnapshot: func(string) {
					if _, err := reg.Check(); err != nil {
						fmt.Fprintf(os.Stderr, "hamserve: registry: %v\n", err)
					}
				},
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
				os.Exit(1)
			}
			go lr.Run(context.Background())
			fmt.Fprintf(os.Stderr, "hamserve: learning into %s (interval %s, %d centroid(s)/class)\n",
				dir, *learnInterval, *learnCentroids)
			learner, learnReg = lr, reg
			srv, err = hdam.ServeLearningEngine(eng, lr, netCfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
				os.Exit(1)
			}
			break
		}
		srv, err = hdam.ServeEngine(eng, netCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamserve: %v\n", err)
			os.Exit(1)
		}
	}

	if a := srv.BinaryAddr(); a != nil {
		fmt.Printf("listening binary=%s\n", a)
	}
	if a := srv.HTTPAddr(); a != nil {
		fmt.Printf("listening http=%s\n", a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "hamserve: %v, draining (deadline %s)...\n", s, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hamserve: drain: %v\n", err)
		srv.Close()
		os.Exit(1)
	}
	if learner != nil {
		// No ingest can arrive after the drain; fold the tail so nothing
		// accepted is lost, then retire the learner and its registry.
		if rep, err := learner.Reconcile(); err != nil {
			fmt.Fprintf(os.Stderr, "hamserve: final reconcile: %v\n", err)
		} else if !rep.Skipped {
			fmt.Fprintf(os.Stderr, "hamserve: final reconcile: gen %d (%d classes, %d new examples) at %s\n",
				rep.Gen, rep.Classes, rep.NewExamples, rep.Path)
		}
		learner.Close()
		learnReg.Close()
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"hamserve: drained clean: %d conns accepted (%d rejected), %d frames, %d queries, %d answered, %d http requests\n",
		st.Accepted, st.RejectedConns, st.Frames, st.Queries, st.Answered, st.HTTPRequests)
}

// model loads a snapshot or trains the language pipeline fresh.
func model(load string, dim, train int, seed uint64) (*hdam.Trained, error) {
	if load != "" {
		snap, err := hdam.OpenSnapshot(load)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", load, err)
		}
		cfg := snap.Config()
		fmt.Fprintf(os.Stderr, "hamserve: loaded %s: %d classes at D=%d (zero-copy=%v)\n",
			load, snap.Memory().Classes(), cfg.Dim, snap.ZeroCopy())
		p := hdam.DefaultLanguageParams()
		p.Dim, p.NGram, p.Seed = cfg.Dim, cfg.NGram, cfg.Seed
		p.TestPerLang = 1
		return rebuildTrained(snap.Memory(), p), nil
	}
	p := hdam.DefaultLanguageParams()
	p.Dim = dim
	p.TrainChars = train
	p.Seed = seed
	p.TestPerLang = 1
	langs := hdam.Languages()
	fmt.Fprintf(os.Stderr, "hamserve: training %d languages at D=%d on %d chars each (%d workers)...\n",
		len(langs), p.Dim, p.TrainChars, runtime.GOMAXPROCS(0))
	start := time.Now()
	tr, err := hdam.TrainLanguages(langs, p)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "hamserve: trained in %s\n", time.Since(start).Round(time.Millisecond))
	return tr, nil
}

// rebuildTrained reconstructs the encoder half of a pipeline around a
// loaded memory; item memories are deterministic in the seed, so the
// encoder matches the one that produced the saved prototypes.
func rebuildTrained(mem *hdam.Memory, p hdam.LanguageParams) *hdam.Trained {
	im := hdam.NewItemMemory(p.Dim, p.Seed)
	im.Preload(hdam.LatinAlphabet)
	return &hdam.Trained{Memory: mem, Encoder: hdam.NewEncoder(im, p.NGram), Params: p}
}
