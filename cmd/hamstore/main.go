// Command hamstore inspects, verifies and converts model snapshot files.
//
// Usage:
//
//	hamstore inspect model.hds
//	hamstore verify model.hds [more.hds ...]
//	hamstore convert [-ngram N] [-seed N] [-note S] legacy.mem model.hds
//
// inspect prints a snapshot's config, provenance, labels and section table
// after full validation. verify validates one or more snapshots end to end
// (every checksum, every structural invariant) and exits non-zero if any
// fail. convert rewrites a legacy SaveMemory file as a versioned snapshot;
// the legacy format records no encoder parameters, so -ngram and -seed must
// state what the model was trained with (defaults 3 and 2017, the pipeline
// defaults).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"hdam"
)

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  hamstore inspect <file>                               print snapshot metadata
  hamstore verify <file> [<file> ...]                   validate snapshots end to end
  hamstore convert [-ngram N] [-seed N] [-note S] <legacy> <out>
                                                        convert a legacy memory file
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "inspect":
		if len(os.Args) != 3 {
			usage()
		}
		if err := inspect(os.Args[2]); err != nil {
			fmt.Fprintf(os.Stderr, "hamstore: %v\n", err)
			os.Exit(1)
		}
	case "verify":
		if len(os.Args) < 3 {
			usage()
		}
		failed := 0
		for _, path := range os.Args[2:] {
			if _, err := hdam.VerifySnapshot(path); err != nil {
				fmt.Printf("%s: FAILED: %v\n", path, err)
				failed++
				continue
			}
			fmt.Printf("%s: ok\n", path)
		}
		if failed > 0 {
			os.Exit(1)
		}
	case "convert":
		fs := flag.NewFlagSet("convert", flag.ExitOnError)
		ngram := fs.Int("ngram", 3, "n-gram order the legacy model was trained with")
		seed := fs.Uint64("seed", 2017, "pipeline seed the legacy model was trained with")
		note := fs.String("note", "", "free-form provenance note for the snapshot")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			usage()
		}
		if err := convert(fs.Arg(0), fs.Arg(1), *ngram, *seed, *note); err != nil {
			fmt.Fprintf(os.Stderr, "hamstore: %v\n", err)
			os.Exit(1)
		}
	default:
		usage()
	}
}

func inspect(path string) error {
	info, err := hdam.VerifySnapshot(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: valid snapshot, %d bytes (verified zero-copy=%v)\n", info.Path, info.Size, info.ZeroCopy)
	fmt.Printf("  model:  %d classes at D=%d, ngram=%d, seed=%d\n",
		info.Rows, info.Config.Dim, info.Config.NGram, info.Config.Seed)
	p := info.Provenance
	created := "unknown"
	if !p.CreatedAt.IsZero() {
		created = p.CreatedAt.UTC().Format(time.RFC3339)
	}
	fmt.Printf("  origin: trainer=%q corpus-seed=%d created=%s\n", p.Trainer, p.CorpusSeed, created)
	if p.Note != "" {
		fmt.Printf("  note:   %s\n", p.Note)
	}
	fmt.Printf("  labels: %v\n", info.Labels)
	if len(info.Meta) > 0 {
		// Print every META key the file carries, not just the ones this
		// build's Config models, so forward-extension fields (cascade
		// slices, learn centroid layout, future additions) always show.
		keys := make([]string, 0, len(info.Meta))
		for k := range info.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("  meta:")
		for _, k := range keys {
			v := info.Meta[k]
			// JSON numbers decode as float64; print integral ones whole.
			if f, ok := v.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1<<53 {
				v = int64(f)
			}
			fmt.Printf("    %-16s %v\n", k, v)
		}
	}
	fmt.Println("  sections:")
	for _, s := range info.Sections {
		fmt.Printf("    %-8s offset=%-8d length=%-10d crc32c=%08x\n", s.Name, s.Offset, s.Length, s.CRC)
	}
	return nil
}

func convert(src, dst string, ngram int, seed uint64, note string) error {
	f, err := os.Open(src)
	if err != nil {
		return err
	}
	defer f.Close()
	mem, err := hdam.LoadMemory(f)
	if err != nil {
		return fmt.Errorf("reading legacy memory %s: %w", src, err)
	}
	if note == "" {
		note = fmt.Sprintf("converted from legacy file %s", src)
	}
	snap, err := hdam.CaptureSnapshot(mem,
		hdam.SnapshotConfig{Dim: mem.Dim(), NGram: ngram, Seed: seed},
		hdam.SnapshotProvenance{
			Trainer:    "hamstore convert",
			CorpusSeed: seed,
			CreatedAt:  time.Now().UTC(),
			Note:       note,
		})
	if err != nil {
		return err
	}
	if err := hdam.SaveSnapshot(dst, snap); err != nil {
		return err
	}
	fmt.Printf("converted %s -> %s (%d classes at D=%d)\n", src, dst, mem.Classes(), mem.Dim())
	return nil
}
