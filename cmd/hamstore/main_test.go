package main

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"hdam"
)

func TestConvertRoundTrip(t *testing.T) {
	dim, classes := 640, 5
	rng := rand.New(rand.NewPCG(7, 7))
	cs := make([]*hdam.Vector, classes)
	ls := make([]string, classes)
	for i := range cs {
		cs[i] = hdam.RandomVector(dim, rng)
		ls[i] = string(rune('a' + i))
	}
	mem, err := hdam.NewMemory(cs, ls)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	legacy := filepath.Join(dir, "legacy.mem")
	f, err := os.Create(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := hdam.SaveMemory(f, mem); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "model.hds")
	if err := convert(legacy, out, 4, 99, "test conversion"); err != nil {
		t.Fatalf("convert: %v", err)
	}
	info, err := hdam.VerifySnapshot(out)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if info.Rows != classes || info.Config.Dim != dim || info.Config.NGram != 4 || info.Config.Seed != 99 {
		t.Fatalf("converted info %+v", info)
	}
	if info.Provenance.Trainer != "hamstore convert" || info.Provenance.Note != "test conversion" {
		t.Fatalf("converted provenance %+v", info.Provenance)
	}
	if err := inspect(out); err != nil {
		t.Fatalf("inspect: %v", err)
	}

	snap, err := hdam.OpenSnapshot(out)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	got := snap.Memory()
	for i := 0; i < classes; i++ {
		if got.Label(i) != mem.Label(i) || !got.Class(i).Equal(mem.Class(i)) {
			t.Fatalf("class %d differs after conversion", i)
		}
	}
}

func TestConvertRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "junk")
	if err := os.WriteFile(src, []byte("not a memory"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := convert(src, filepath.Join(dir, "out.hds"), 3, 1, ""); err == nil {
		t.Fatal("garbage input converted")
	}
}
